"""Reproduction of every figure in the paper's evaluation section.

Each figure *compiles to one declarative plan*: a ``figN_plan`` builder
turns the :class:`ExperimentConfig` into an
:class:`~repro.api.plan.ExperimentPlan` whose grid cells are exactly the
paper's configurations, the plan executes through the package's single
funnel (:meth:`ExperimentPlan.execute`, persistent worker pool included),
and the ``figureN_*`` function maps the resulting cells onto the figure's
series.  :func:`figure_plan` exposes the compiled plan of any figure by id
(``repro plan export --figure fig8`` serialises it to a file), so a figure
grid can be shipped, diffed, resumed and sharded like any other plan.

* Fig. 5  -- effective depth η sweep (PAM + heuristic dropping);
* Fig. 6  -- robustness improvement factor β sweep (PAM + heuristic);
* Fig. 7a -- heterogeneous mapping heuristics × {Heuristic, ReactDrop};
* Fig. 7b -- homogeneous mapping heuristics × {Heuristic, ReactDrop};
* Fig. 8  -- PAM+{Optimal, Heuristic, Threshold} across oversubscription;
* Fig. 9  -- cost per completed-task percentage across oversubscription;
* Fig. 10 -- mapping heuristics × dropping on the transcoding workload;
* §V-F    -- reactive share of drops under proactive dropping;
* churn   -- ranking-under-churn study: the paper's mapper×dropper pairs
  re-ranked under crash/restart machine churn vs the clean-room baseline;
* locality -- ranking-under-locality study: the same pairs re-ranked on a
  tiered edge/cloud topology (data movement as a first-class cost) vs the
  paper's implicit uniform platform.

Absolute robustness values depend on the synthetic workloads (see DESIGN.md
substitutions); what the benchmark harness asserts is the *shape* of these
results, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .config import ExperimentConfig
from .runner import ConfigurationResult

__all__ = [
    "FigurePoint",
    "FigureResult",
    "figure_plan",
    "figure5_effective_depth",
    "figure6_beta",
    "figure7a_heterogeneous",
    "figure7b_homogeneous",
    "figure8_dropping_policies",
    "figure9_cost",
    "figure10_transcoding",
    "reactive_share_analysis",
    "churn_plan",
    "figure_churn_ranking",
    "locality_plan",
    "figure_locality_ranking",
    "DEFAULT_LEVELS",
    "CHURN_PAIRS",
]

#: Oversubscription levels used throughout the evaluation.
DEFAULT_LEVELS: Tuple[str, ...] = ("20k", "30k", "40k")


@dataclass(frozen=True)
class FigurePoint:
    """One data point of a figure series.

    Attributes
    ----------
    x:
        Horizontal-axis value (η, β, oversubscription label, heuristic name).
    value:
        Mean of the plotted metric across trials.
    lower / upper:
        Confidence-interval bounds of the plotted metric.
    result:
        Full configuration result backing the point.
    """

    x: object
    value: float
    lower: float
    upper: float
    result: ConfigurationResult


@dataclass
class FigureResult:
    """All series of one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[FigurePoint]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_point(self, series_name: str, x: object,
                  result: ConfigurationResult, metric: str = "robustness") -> None:
        """Append one configuration result to a series."""
        if metric == "robustness":
            ci = result.aggregate.robustness_pct
        elif metric == "cost":
            ci = result.aggregate.cost_per_completed_pct
            if ci is None:
                raise ValueError("configuration carries no cost metric")
        elif metric == "reactive_share":
            ci = result.aggregate.reactive_share
        else:
            raise ValueError(f"unknown metric {metric!r}")
        point = FigurePoint(x=x, value=ci.mean, lower=ci.lower, upper=ci.upper,
                            result=result)
        self.series.setdefault(series_name, []).append(point)

    def series_values(self, series_name: str) -> List[float]:
        """Mean metric values of one series, in insertion order."""
        return [p.value for p in self.series[series_name]]

    def series_xs(self, series_name: str) -> List[object]:
        """Horizontal-axis values of one series, in insertion order."""
        return [p.x for p in self.series[series_name]]

    def to_rows(self) -> List[Tuple[str, object, float, float, float]]:
        """Flat ``(series, x, mean, lower, upper)`` rows for tabular output."""
        rows = []
        for name, points in self.series.items():
            for p in points:
                rows.append((name, p.x, p.value, p.lower, p.upper))
        return rows


# ----------------------------------------------------------------------
# Plan execution helpers
# ----------------------------------------------------------------------

def _run_plan(plan) -> List[ConfigurationResult]:
    """Execute a figure's plan and wrap each cell as a ConfigurationResult.

    Results come back in grid order (the plan's canonical axis order), so
    the figure functions can zip them against the loops that generated the
    grid.  Labels default to the trial spec's pretty name
    (``"PAM+Heuristic"``); figures that need parameterised labels relabel
    the results they place.
    """
    sweep = plan.execute()
    return [ConfigurationResult(label=run.specs[0].label, specs=run.specs,
                                aggregate=run.aggregate)
            for run in sweep.runs]


def _relabel(result: ConfigurationResult, label: str) -> ConfigurationResult:
    return ConfigurationResult(label=label, specs=result.specs,
                               aggregate=result.aggregate)


# ----------------------------------------------------------------------
# Figure 5: effective depth sweep
# ----------------------------------------------------------------------

def fig5_plan(config: ExperimentConfig, etas: Sequence[int] = (1, 2, 3, 4, 5),
              levels: Sequence[str] = DEFAULT_LEVELS,
              mapper: str = "PAM"):
    """Compile Fig. 5 (effective-depth sweep) to one plan."""
    return config.plan(
        name="fig5-effective-depth", levels=list(levels), mappers=[mapper],
        droppers=[{"name": "heuristic",
                   "params": {"beta": 1.0, "eta": int(eta)},
                   "label": f"Heuristic(eta={int(eta)})"} for eta in etas])


def figure5_effective_depth(config: ExperimentConfig,
                            etas: Sequence[int] = (1, 2, 3, 4, 5),
                            levels: Sequence[str] = DEFAULT_LEVELS,
                            mapper: str = "PAM") -> FigureResult:
    """Impact of the effective depth η on robustness (Fig. 5)."""
    fig = FigureResult(figure_id="fig5",
                       title="Impact of effective depth on system robustness",
                       x_label="Effective depth (eta)",
                       y_label="Tasks completed on time (%)")
    results = iter(_run_plan(fig5_plan(config, etas, levels, mapper)))
    for level in levels:
        series = f"{level} tasks"
        for eta in etas:
            result = _relabel(next(results),
                              f"{mapper}+Heuristic(eta={int(eta)})")
            fig.add_point(series, int(eta), result)
    return fig


# ----------------------------------------------------------------------
# Figure 6: robustness improvement factor sweep
# ----------------------------------------------------------------------

def fig6_plan(config: ExperimentConfig,
              betas: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
              levels: Sequence[str] = DEFAULT_LEVELS,
              mapper: str = "PAM", eta: int = 2):
    """Compile Fig. 6 (β sweep) to one plan."""
    return config.plan(
        name="fig6-beta", levels=list(levels), mappers=[mapper],
        droppers=[{"name": "heuristic",
                   "params": {"beta": float(beta), "eta": int(eta)},
                   "label": f"Heuristic(beta={float(beta)})"}
                  for beta in betas])


def figure6_beta(config: ExperimentConfig,
                 betas: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
                 levels: Sequence[str] = DEFAULT_LEVELS,
                 mapper: str = "PAM", eta: int = 2) -> FigureResult:
    """Impact of the robustness improvement factor β on robustness (Fig. 6)."""
    fig = FigureResult(figure_id="fig6",
                       title="Impact of robustness improvement factor",
                       x_label="Robustness improvement factor (beta)",
                       y_label="Tasks completed on time (%)")
    results = iter(_run_plan(fig6_plan(config, betas, levels, mapper, eta)))
    for level in levels:
        series = f"{level} tasks"
        for beta in betas:
            result = _relabel(next(results),
                              f"{mapper}+Heuristic(beta={float(beta)})")
            fig.add_point(series, float(beta), result)
    return fig


# ----------------------------------------------------------------------
# Figures 7a / 7b / 10: mapping heuristics with and without proactive dropping
# ----------------------------------------------------------------------

def _mapping_comparison_plan(config: ExperimentConfig, scenario_name: str,
                             level: str, mappers: Sequence[str], name: str,
                             eta: int = 2, beta: float = 1.0):
    return config.plan(
        name=name, scenarios=[scenario_name], levels=[level],
        mappers=list(mappers),
        droppers=[{"name": "heuristic",
                   "params": {"beta": float(beta), "eta": int(eta)}},
                  "react"])


def _mapping_comparison(config: ExperimentConfig, scenario_name: str, level: str,
                        mappers: Sequence[str], figure_id: str, title: str,
                        eta: int = 2, beta: float = 1.0) -> FigureResult:
    fig = FigureResult(figure_id=figure_id, title=title,
                       x_label="Mapping heuristic",
                       y_label="Tasks completed on time (%)")
    plan = _mapping_comparison_plan(config, scenario_name, level, mappers,
                                    f"{figure_id}-comparison", eta, beta)
    results = iter(_run_plan(plan))
    for mapper in mappers:
        with_drop = next(results)     # heuristic dropper varies fastest,
        without_drop = next(results)  # so each mapper yields two cells
        fig.add_point(f"{mapper}+Heuristic", mapper, with_drop)
        fig.add_point(f"{mapper}+ReactDrop", mapper, without_drop)
    return fig


def figure7a_heterogeneous(config: ExperimentConfig, level: str = "30k",
                           mappers: Sequence[str] = ("MSD", "MM", "PAM")) -> FigureResult:
    """Proactive dropping across heterogeneous mapping heuristics (Fig. 7a)."""
    return _mapping_comparison(config, "spec", level, mappers, "fig7a",
                               "Proactive dropping in a heterogeneous system")


def figure7b_homogeneous(config: ExperimentConfig, level: str = "30k",
                         mappers: Sequence[str] = ("FCFS", "EDF", "SJF", "PAM")
                         ) -> FigureResult:
    """Proactive dropping across homogeneous mapping heuristics (Fig. 7b)."""
    return _mapping_comparison(config, "homogeneous", level, mappers, "fig7b",
                               "Proactive dropping in a homogeneous system")


def figure10_transcoding(config: ExperimentConfig, level: str = "20k",
                         mappers: Sequence[str] = ("MSD", "MM", "PAM")) -> FigureResult:
    """Validation on the video-transcoding workload (Fig. 10)."""
    return _mapping_comparison(config, "transcoding", level, mappers, "fig10",
                               "Proactive dropping on the video transcoding workload")


# ----------------------------------------------------------------------
# Figure 8: dropping-policy comparison
# ----------------------------------------------------------------------

def fig8_plan(config: ExperimentConfig,
              levels: Sequence[str] = DEFAULT_LEVELS, mapper: str = "PAM",
              include_optimal: bool = True):
    """Compile Fig. 8 (dropping-policy comparison) to one plan."""
    droppers: List[object] = []
    if include_optimal:
        droppers.append({"name": "optimal"})
    droppers.extend([
        {"name": "heuristic", "params": {"beta": 1.0, "eta": 2}},
        {"name": "threshold-adaptive"},
    ])
    return config.plan(name="fig8-dropping-policies", levels=list(levels),
                       mappers=[mapper], droppers=droppers)


def figure8_dropping_policies(config: ExperimentConfig,
                              levels: Sequence[str] = DEFAULT_LEVELS,
                              mapper: str = "PAM",
                              include_optimal: bool = True) -> FigureResult:
    """PAM+Optimal vs PAM+Heuristic vs PAM+Threshold across oversubscription (Fig. 8)."""
    fig = FigureResult(figure_id="fig8",
                       title="Proactive dropping vs threshold-based dropping",
                       x_label="Oversubscription level",
                       y_label="Tasks completed on time (%)")
    labels: List[str] = []
    if include_optimal:
        labels.append(f"{mapper}+Optimal")
    labels.extend([f"{mapper}+Heuristic", f"{mapper}+Threshold"])
    plan = fig8_plan(config, levels, mapper, include_optimal)
    results = iter(_run_plan(plan))
    for level in levels:
        for label in labels:
            fig.add_point(label, level, _relabel(next(results), label))
    return fig


# ----------------------------------------------------------------------
# Figure 9: incurred cost
# ----------------------------------------------------------------------

def fig9_plan(config: ExperimentConfig,
              levels: Sequence[str] = DEFAULT_LEVELS):
    """Compile Fig. 9 (incurred cost) to one plan.

    The paper compares three *matched* configurations, so the grid is an
    explicit pair list rather than a mapper x dropper product.
    """
    return config.plan(
        name="fig9-cost", levels=list(levels), with_cost=True,
        pairs=[
            {"mapper": "PAM", "dropper": {"name": "threshold-adaptive"}},
            {"mapper": "PAM",
             "dropper": {"name": "heuristic",
                         "params": {"beta": 1.0, "eta": 2}}},
            {"mapper": "MM", "dropper": "react"},
        ])


def figure9_cost(config: ExperimentConfig,
                 levels: Sequence[str] = DEFAULT_LEVELS) -> FigureResult:
    """Normalised incurred cost of resources across oversubscription (Fig. 9)."""
    fig = FigureResult(figure_id="fig9",
                       title="Incurred cost of using resources",
                       x_label="Oversubscription level",
                       y_label="Cost / tasks completed on time (%)")
    labels = ["PAM+Threshold", "PAM+Heuristic", "MM+ReactDrop"]
    results = iter(_run_plan(fig9_plan(config, levels)))
    for level in levels:
        for label in labels:
            fig.add_point(label, level, _relabel(next(results), label),
                          metric="cost")
    return fig


# ----------------------------------------------------------------------
# Section V-F: reactive share of drops
# ----------------------------------------------------------------------

def drops_plan(config: ExperimentConfig, level: str = "30k",
               mapper: str = "PAM"):
    """Compile the §V-F reactive-share analysis to one plan."""
    return config.plan(
        name="vF-reactive-share", levels=[level], mappers=[mapper],
        droppers=[{"name": "heuristic", "params": {"beta": 1.0, "eta": 2}},
                  "react"])


def reactive_share_analysis(config: ExperimentConfig, level: str = "30k",
                            mapper: str = "PAM") -> FigureResult:
    """Share of machine-queue drops that remain reactive (Section V-F).

    The paper reports that with the proactive mechanism enabled only about
    7 % of drops happen reactively; without it every drop is reactive by
    definition.
    """
    fig = FigureResult(figure_id="vF-drops",
                       title="Reactive share of machine-queue drops",
                       x_label="Configuration",
                       y_label="Reactive share of queue drops")
    with_drop, without_drop = _run_plan(drops_plan(config, level, mapper))
    fig.add_point(f"{mapper}+Heuristic", f"{mapper}+Heuristic", with_drop,
                  metric="reactive_share")
    fig.add_point(f"{mapper}+ReactDrop", f"{mapper}+ReactDrop", without_drop,
                  metric="reactive_share")
    return fig


# ----------------------------------------------------------------------
# Ranking-under-churn study
# ----------------------------------------------------------------------

#: Mapper × dropper pairs whose ranking the churn study compares.  These
#: are the paper's headline configurations: proactive dropping (Heuristic),
#: the threshold baseline and purely reactive dropping, under the two main
#: mapping heuristics.
CHURN_PAIRS: Tuple[Tuple[str, object], ...] = (
    ("PAM", {"name": "heuristic", "params": {"beta": 1.0, "eta": 2}}),
    ("PAM", {"name": "threshold-adaptive"}),
    ("MM", {"name": "heuristic", "params": {"beta": 1.0, "eta": 2}}),
    ("MM", "react"),
)


def churn_plan(config: ExperimentConfig, level: str = "30k",
               variant: str = "churn", mtbf: float = 2_000.0,
               repair_mean: float = 400.0, policy: str = "requeue"):
    """Compile one arm of the ranking-under-churn study to a plan.

    ``variant="clean"`` is the fault-free baseline; ``variant="churn"`` runs
    the same pair grid under a crash/restart fault process.  Both arms share
    scenario, seeds and grid, so any ranking difference is attributable to
    the churn alone.
    """
    if variant not in ("clean", "churn"):
        raise ValueError(f"unknown churn variant {variant!r}; "
                         f"known: clean, churn")
    pairs = [{"mapper": mapper, "dropper": dropper}
             for mapper, dropper in CHURN_PAIRS]
    overrides = {}
    if variant == "churn":
        overrides = {"faults": "crash-restart",
                     "fault_params": {"mtbf": float(mtbf),
                                      "repair_mean": float(repair_mean),
                                      "policy": policy}}
    return config.plan(name=f"churn-ranking-{variant}", levels=[level],
                       pairs=pairs, **overrides)


def _pair_label(mapper: str, dropper: object) -> str:
    pretty = {"heuristic": "Heuristic", "threshold-adaptive": "Threshold",
              "react": "ReactDrop", "optimal": "Optimal"}
    name = dropper["name"] if isinstance(dropper, dict) else dropper
    return f"{mapper}+{pretty.get(name, name)}"


def figure_churn_ranking(config: ExperimentConfig, level: str = "30k",
                         mtbf: float = 2_000.0, repair_mean: float = 400.0,
                         policy: str = "requeue") -> FigureResult:
    """Mapper×dropper robustness ranking under churn vs clean-room.

    Runs the :data:`CHURN_PAIRS` grid twice -- once fault-free, once under
    seeded crash/restart churn -- and reports both robustness series side by
    side.  The series order within each arm *is* the ranking; the figure
    title records how the orderings compare.
    """
    labels = [_pair_label(mapper, dropper) for mapper, dropper in CHURN_PAIRS]
    clean = _run_plan(churn_plan(config, level, variant="clean"))
    churn = _run_plan(churn_plan(config, level, variant="churn", mtbf=mtbf,
                                 repair_mean=repair_mean, policy=policy))

    def ranking(results: Sequence[ConfigurationResult]) -> List[str]:
        order = sorted(zip(labels, results),
                       key=lambda item: -item[1].aggregate.robustness_pct.mean)
        return [label for label, _ in order]

    preserved = ranking(clean) == ranking(churn)
    fig = FigureResult(
        figure_id="churn",
        title="Pair ranking under crash/restart churn "
              + ("(ranking preserved)" if preserved else "(ranking changed)"),
        x_label="Mapper+Dropper",
        y_label="Tasks completed on time (%)")
    for label, result in zip(labels, clean):
        fig.add_point("clean", label, _relabel(result, label))
    for label, result in zip(labels, churn):
        fig.add_point("churn", label, _relabel(result, label))
    return fig


# ----------------------------------------------------------------------
# Ranking-under-locality study
# ----------------------------------------------------------------------

def locality_plan(config: ExperimentConfig, level: str = "30k",
                  variant: str = "tiered", bandwidth: float = 48.0,
                  latency: int = 2, task_bytes: int = 192):
    """Compile one arm of the ranking-under-locality study to a plan.

    ``variant="uniform"`` is the paper's implicit zero-cost platform;
    ``variant="tiered"`` runs the same pair grid on a tiered edge/cloud
    topology where every dispatch to a cloud machine pays a shared-uplink
    transfer.  Both arms share scenario, seeds and grid (the transfer
    schedule is deterministic and draws no randomness), so any ranking
    difference is attributable to data movement alone.
    """
    if variant not in ("uniform", "tiered"):
        raise ValueError(f"unknown locality variant {variant!r}; "
                         f"known: uniform, tiered")
    pairs = [{"mapper": mapper, "dropper": dropper}
             for mapper, dropper in CHURN_PAIRS]
    overrides = {}
    if variant == "tiered":
        overrides = {"topology": "tiered-edge-cloud",
                     "topology_params": {"bandwidth": float(bandwidth),
                                         "latency": int(latency),
                                         "task_bytes": int(task_bytes)}}
    return config.plan(name=f"locality-ranking-{variant}", levels=[level],
                       pairs=pairs, **overrides)


def figure_locality_ranking(config: ExperimentConfig, level: str = "30k",
                            bandwidth: float = 48.0, latency: int = 2,
                            task_bytes: int = 192) -> FigureResult:
    """Mapper×dropper robustness ranking on a tiered topology vs uniform.

    Runs the :data:`CHURN_PAIRS` grid twice -- once on the paper's implicit
    uniform platform, once on a tiered edge/cloud topology with a shared
    uplink in front of the fast machines -- and reports both robustness
    series side by side.  The series order within each arm *is* the
    ranking; the figure title records how the orderings compare.
    """
    labels = [_pair_label(mapper, dropper) for mapper, dropper in CHURN_PAIRS]
    uniform = _run_plan(locality_plan(config, level, variant="uniform"))
    tiered = _run_plan(locality_plan(config, level, variant="tiered",
                                     bandwidth=bandwidth, latency=latency,
                                     task_bytes=task_bytes))

    def ranking(results: Sequence[ConfigurationResult]) -> List[str]:
        order = sorted(zip(labels, results),
                       key=lambda item: -item[1].aggregate.robustness_pct.mean)
        return [label for label, _ in order]

    preserved = ranking(uniform) == ranking(tiered)
    fig = FigureResult(
        figure_id="locality",
        title="Pair ranking under a tiered edge/cloud topology "
              + ("(ranking preserved)" if preserved else "(ranking changed)"),
        x_label="Mapper+Dropper",
        y_label="Tasks completed on time (%)")
    for label, result in zip(labels, uniform):
        fig.add_point("uniform", label, _relabel(result, label))
    for label, result in zip(labels, tiered):
        fig.add_point("tiered", label, _relabel(result, label))
    return fig


# ----------------------------------------------------------------------
# Plan export
# ----------------------------------------------------------------------

def figure_plan(figure_id: str, config: ExperimentConfig,
                levels: Optional[Sequence[str]] = None,
                level: Optional[str] = None,
                include_optimal: bool = True):
    """The compiled :class:`ExperimentPlan` of a figure, by id.

    This is what ``repro plan export --figure figN`` serialises: running the
    exported plan executes exactly the grid the figure command would, cell
    for cell and seed for seed.
    """
    levels = tuple(levels) if levels else DEFAULT_LEVELS
    if figure_id == "fig5":
        return fig5_plan(config, levels=levels)
    if figure_id == "fig6":
        return fig6_plan(config, levels=levels)
    if figure_id == "fig7a":
        return _mapping_comparison_plan(config, "spec", level or "30k",
                                        ("MSD", "MM", "PAM"),
                                        "fig7a-comparison")
    if figure_id == "fig7b":
        return _mapping_comparison_plan(config, "homogeneous", level or "30k",
                                        ("FCFS", "EDF", "SJF", "PAM"),
                                        "fig7b-comparison")
    if figure_id == "fig8":
        return fig8_plan(config, levels=levels,
                         include_optimal=include_optimal)
    if figure_id == "fig9":
        return fig9_plan(config, levels=levels)
    if figure_id == "fig10":
        return _mapping_comparison_plan(config, "transcoding", level or "20k",
                                        ("MSD", "MM", "PAM"),
                                        "fig10-comparison")
    if figure_id == "drops":
        return drops_plan(config, level=level or "30k")
    if figure_id == "churn":
        # Export the faulted arm; the clean baseline is the same plan with
        # the fault axis removed (or variant="clean" through the API).
        return churn_plan(config, level=level or "30k", variant="churn")
    if figure_id == "locality":
        # Export the tiered arm; the uniform baseline is the same plan
        # with the topology axis removed (or variant="uniform").
        return locality_plan(config, level=level or "30k", variant="tiered")
    raise ValueError(f"unknown figure {figure_id!r}; known: fig5, fig6, "
                     f"fig7a, fig7b, fig8, fig9, fig10, drops, churn, "
                     f"locality")
