"""Reproduction of every figure in the paper's evaluation section.

Each ``figureN_*`` function sweeps the corresponding parameter space, runs
the configured number of workload trials per point, and returns a
:class:`FigureResult` whose rows mirror the series plotted in the paper.
Every configuration is executed through the fluent
:class:`repro.api.Simulation` builder (via :func:`run_configuration`), so
custom mappers/droppers/scenarios registered in
:mod:`repro.api.registries` can be swept by name here too:

* Fig. 5  -- effective depth η sweep (PAM + heuristic dropping);
* Fig. 6  -- robustness improvement factor β sweep (PAM + heuristic);
* Fig. 7a -- heterogeneous mapping heuristics × {Heuristic, ReactDrop};
* Fig. 7b -- homogeneous mapping heuristics × {Heuristic, ReactDrop};
* Fig. 8  -- PAM+{Optimal, Heuristic, Threshold} across oversubscription;
* Fig. 9  -- cost per completed-task percentage across oversubscription;
* Fig. 10 -- mapping heuristics × dropping on the transcoding workload;
* §V-F    -- reactive share of drops under proactive dropping.

Absolute robustness values depend on the synthetic workloads (see DESIGN.md
substitutions); what the benchmark harness asserts is the *shape* of these
results, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .config import ExperimentConfig
from .runner import ConfigurationResult, run_configuration

__all__ = [
    "FigurePoint",
    "FigureResult",
    "figure5_effective_depth",
    "figure6_beta",
    "figure7a_heterogeneous",
    "figure7b_homogeneous",
    "figure8_dropping_policies",
    "figure9_cost",
    "figure10_transcoding",
    "reactive_share_analysis",
    "DEFAULT_LEVELS",
]

#: Oversubscription levels used throughout the evaluation.
DEFAULT_LEVELS: Tuple[str, ...] = ("20k", "30k", "40k")


@dataclass(frozen=True)
class FigurePoint:
    """One data point of a figure series.

    Attributes
    ----------
    x:
        Horizontal-axis value (η, β, oversubscription label, heuristic name).
    value:
        Mean of the plotted metric across trials.
    lower / upper:
        Confidence-interval bounds of the plotted metric.
    result:
        Full configuration result backing the point.
    """

    x: object
    value: float
    lower: float
    upper: float
    result: ConfigurationResult


@dataclass
class FigureResult:
    """All series of one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[FigurePoint]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_point(self, series_name: str, x: object,
                  result: ConfigurationResult, metric: str = "robustness") -> None:
        """Append one configuration result to a series."""
        if metric == "robustness":
            ci = result.aggregate.robustness_pct
        elif metric == "cost":
            ci = result.aggregate.cost_per_completed_pct
            if ci is None:
                raise ValueError("configuration carries no cost metric")
        elif metric == "reactive_share":
            ci = result.aggregate.reactive_share
        else:
            raise ValueError(f"unknown metric {metric!r}")
        point = FigurePoint(x=x, value=ci.mean, lower=ci.lower, upper=ci.upper,
                            result=result)
        self.series.setdefault(series_name, []).append(point)

    def series_values(self, series_name: str) -> List[float]:
        """Mean metric values of one series, in insertion order."""
        return [p.value for p in self.series[series_name]]

    def series_xs(self, series_name: str) -> List[object]:
        """Horizontal-axis values of one series, in insertion order."""
        return [p.x for p in self.series[series_name]]

    def to_rows(self) -> List[Tuple[str, object, float, float, float]]:
        """Flat ``(series, x, mean, lower, upper)`` rows for tabular output."""
        rows = []
        for name, points in self.series.items():
            for p in points:
                rows.append((name, p.x, p.value, p.lower, p.upper))
        return rows


# ----------------------------------------------------------------------
# Figure 5: effective depth sweep
# ----------------------------------------------------------------------

def figure5_effective_depth(config: ExperimentConfig,
                            etas: Sequence[int] = (1, 2, 3, 4, 5),
                            levels: Sequence[str] = DEFAULT_LEVELS,
                            mapper: str = "PAM") -> FigureResult:
    """Impact of the effective depth η on robustness (Fig. 5)."""
    fig = FigureResult(figure_id="fig5",
                       title="Impact of effective depth on system robustness",
                       x_label="Effective depth (eta)",
                       y_label="Tasks completed on time (%)")
    for level in levels:
        series = f"{level} tasks"
        for eta in etas:
            result = run_configuration(config, "spec", level, mapper, "heuristic",
                                       {"beta": 1.0, "eta": int(eta)},
                                       label=f"{mapper}+Heuristic(eta={eta})")
            fig.add_point(series, int(eta), result)
    return fig


# ----------------------------------------------------------------------
# Figure 6: robustness improvement factor sweep
# ----------------------------------------------------------------------

def figure6_beta(config: ExperimentConfig,
                 betas: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
                 levels: Sequence[str] = DEFAULT_LEVELS,
                 mapper: str = "PAM", eta: int = 2) -> FigureResult:
    """Impact of the robustness improvement factor β on robustness (Fig. 6)."""
    fig = FigureResult(figure_id="fig6",
                       title="Impact of robustness improvement factor",
                       x_label="Robustness improvement factor (beta)",
                       y_label="Tasks completed on time (%)")
    for level in levels:
        series = f"{level} tasks"
        for beta in betas:
            result = run_configuration(config, "spec", level, mapper, "heuristic",
                                       {"beta": float(beta), "eta": eta},
                                       label=f"{mapper}+Heuristic(beta={beta})")
            fig.add_point(series, float(beta), result)
    return fig


# ----------------------------------------------------------------------
# Figures 7a / 7b / 10: mapping heuristics with and without proactive dropping
# ----------------------------------------------------------------------

def _mapping_comparison(config: ExperimentConfig, scenario_name: str, level: str,
                        mappers: Sequence[str], figure_id: str, title: str,
                        eta: int = 2, beta: float = 1.0) -> FigureResult:
    fig = FigureResult(figure_id=figure_id, title=title,
                       x_label="Mapping heuristic",
                       y_label="Tasks completed on time (%)")
    for mapper in mappers:
        with_drop = run_configuration(config, scenario_name, level, mapper,
                                      "heuristic", {"beta": beta, "eta": eta})
        without_drop = run_configuration(config, scenario_name, level, mapper,
                                         "react")
        fig.add_point(f"{mapper}+Heuristic", mapper, with_drop)
        fig.add_point(f"{mapper}+ReactDrop", mapper, without_drop)
    return fig


def figure7a_heterogeneous(config: ExperimentConfig, level: str = "30k",
                           mappers: Sequence[str] = ("MSD", "MM", "PAM")) -> FigureResult:
    """Proactive dropping across heterogeneous mapping heuristics (Fig. 7a)."""
    return _mapping_comparison(config, "spec", level, mappers, "fig7a",
                               "Proactive dropping in a heterogeneous system")


def figure7b_homogeneous(config: ExperimentConfig, level: str = "30k",
                         mappers: Sequence[str] = ("FCFS", "EDF", "SJF", "PAM")
                         ) -> FigureResult:
    """Proactive dropping across homogeneous mapping heuristics (Fig. 7b)."""
    return _mapping_comparison(config, "homogeneous", level, mappers, "fig7b",
                               "Proactive dropping in a homogeneous system")


def figure10_transcoding(config: ExperimentConfig, level: str = "20k",
                         mappers: Sequence[str] = ("MSD", "MM", "PAM")) -> FigureResult:
    """Validation on the video-transcoding workload (Fig. 10)."""
    return _mapping_comparison(config, "transcoding", level, mappers, "fig10",
                               "Proactive dropping on the video transcoding workload")


# ----------------------------------------------------------------------
# Figure 8: dropping-policy comparison
# ----------------------------------------------------------------------

def figure8_dropping_policies(config: ExperimentConfig,
                              levels: Sequence[str] = DEFAULT_LEVELS,
                              mapper: str = "PAM",
                              include_optimal: bool = True) -> FigureResult:
    """PAM+Optimal vs PAM+Heuristic vs PAM+Threshold across oversubscription (Fig. 8)."""
    fig = FigureResult(figure_id="fig8",
                       title="Proactive dropping vs threshold-based dropping",
                       x_label="Oversubscription level",
                       y_label="Tasks completed on time (%)")
    policies: List[Tuple[str, str, Dict[str, float]]] = []
    if include_optimal:
        policies.append((f"{mapper}+Optimal", "optimal", {}))
    policies.extend([
        (f"{mapper}+Heuristic", "heuristic", {"beta": 1.0, "eta": 2}),
        (f"{mapper}+Threshold", "threshold-adaptive", {}),
    ])
    for level in levels:
        for label, dropper, params in policies:
            result = run_configuration(config, "spec", level, mapper, dropper,
                                       params, label=label)
            fig.add_point(label, level, result)
    return fig


# ----------------------------------------------------------------------
# Figure 9: incurred cost
# ----------------------------------------------------------------------

def figure9_cost(config: ExperimentConfig,
                 levels: Sequence[str] = DEFAULT_LEVELS) -> FigureResult:
    """Normalised incurred cost of resources across oversubscription (Fig. 9)."""
    fig = FigureResult(figure_id="fig9",
                       title="Incurred cost of using resources",
                       x_label="Oversubscription level",
                       y_label="Cost / tasks completed on time (%)")
    configurations = [
        ("PAM+Threshold", "PAM", "threshold-adaptive", {}),
        ("PAM+Heuristic", "PAM", "heuristic", {"beta": 1.0, "eta": 2}),
        ("MM+ReactDrop", "MM", "react", {}),
    ]
    for level in levels:
        for label, mapper, dropper, params in configurations:
            result = run_configuration(config, "spec", level, mapper, dropper,
                                       params, with_cost=True, label=label)
            fig.add_point(label, level, result, metric="cost")
    return fig


# ----------------------------------------------------------------------
# Section V-F: reactive share of drops
# ----------------------------------------------------------------------

def reactive_share_analysis(config: ExperimentConfig, level: str = "30k",
                            mapper: str = "PAM") -> FigureResult:
    """Share of machine-queue drops that remain reactive (Section V-F).

    The paper reports that with the proactive mechanism enabled only about
    7 % of drops happen reactively; without it every drop is reactive by
    definition.
    """
    fig = FigureResult(figure_id="vF-drops",
                       title="Reactive share of machine-queue drops",
                       x_label="Configuration",
                       y_label="Reactive share of queue drops")
    with_drop = run_configuration(config, "spec", level, mapper, "heuristic",
                                  {"beta": 1.0, "eta": 2})
    without_drop = run_configuration(config, "spec", level, mapper, "react")
    fig.add_point(f"{mapper}+Heuristic", f"{mapper}+Heuristic", with_drop,
                  metric="reactive_share")
    fig.add_point(f"{mapper}+ReactDrop", f"{mapper}+ReactDrop", without_drop,
                  metric="reactive_share")
    return fig
