"""Experiment harness reproducing the paper's evaluation section."""

from .ablations import (DroppingAgreementReport, PMFResolutionPoint,
                        ablation_optimal_vs_heuristic, ablation_pmf_resolution,
                        random_queue_view)
from .config import ExperimentConfig, bench_config
from .figures import (DEFAULT_LEVELS, FigurePoint, FigureResult,
                      figure5_effective_depth, figure6_beta,
                      figure7a_heterogeneous, figure7b_homogeneous,
                      figure8_dropping_policies, figure9_cost,
                      figure10_transcoding, reactive_share_analysis)
from .reporting import format_comparison, format_figure_table, format_series_summary
from .runner import (DROPPER_REGISTRY, ConfigurationResult, TrialSpec, make_dropper,
                     run_configuration, run_trial, run_trials)

__all__ = [
    "ExperimentConfig",
    "bench_config",
    "FigurePoint",
    "FigureResult",
    "DEFAULT_LEVELS",
    "figure5_effective_depth",
    "figure6_beta",
    "figure7a_heterogeneous",
    "figure7b_homogeneous",
    "figure8_dropping_policies",
    "figure9_cost",
    "figure10_transcoding",
    "reactive_share_analysis",
    "format_figure_table",
    "format_series_summary",
    "format_comparison",
    "DROPPER_REGISTRY",
    "TrialSpec",
    "ConfigurationResult",
    "make_dropper",
    "run_configuration",
    "run_trial",
    "run_trials",
    "DroppingAgreementReport",
    "PMFResolutionPoint",
    "ablation_optimal_vs_heuristic",
    "ablation_pmf_resolution",
    "random_queue_view",
]
