"""Ablation studies of the design choices called out in DESIGN.md.

Two ablations complement the paper's figures:

* **Optimal vs heuristic agreement (A1)** -- Section V-F claims there is no
  practically significant difference between the exhaustive-search dropping
  and the single-pass heuristic.  The ablation quantifies how often both
  policies make the same per-queue decision on randomly generated queues,
  and how much instantaneous robustness the heuristic gives up when they
  disagree.
* **PMF resolution (A2)** -- the PET construction discretises Gamma samples
  into a bounded number of impulses; this ablation measures how the number
  of histogram bins affects the end-to-end robustness measurement and the
  runtime of the probabilistic machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.completion import QueueEntry
from ..core.dropping import (MachineQueueView, OptimalProactiveDropping,
                             ProactiveHeuristicDropping)
from ..core.pmf import PMF
from ..core.robustness import instantaneous_robustness_with_drops
from ..workload.pet_builder import GammaPETBuilder
from .config import ExperimentConfig
from .runner import run_configuration

__all__ = ["DroppingAgreementReport", "ablation_optimal_vs_heuristic",
           "PMFResolutionPoint", "ablation_pmf_resolution",
           "random_queue_view"]


# ----------------------------------------------------------------------
# A1: optimal vs heuristic per-queue agreement
# ----------------------------------------------------------------------

def random_queue_view(rng: np.random.Generator, queue_length: int = 5,
                      now: int = 0, mean_range: Tuple[float, float] = (50.0, 200.0),
                      slack_range: Tuple[float, float] = (0.5, 3.0),
                      max_impulses: int = 16) -> MachineQueueView:
    """Generate a synthetic machine-queue view for policy comparisons.

    Execution PMFs are Gamma-sampled with means in ``mean_range``;
    deadlines give each task a slack between ``slack_range[0]`` and
    ``slack_range[1]`` times the mean backlog ahead of it, which produces a
    realistic mix of hopeless, marginal and comfortable tasks.
    """
    if queue_length < 1:
        raise ValueError("queue length must be at least 1")
    builder = GammaPETBuilder(samples_per_pair=200, max_impulses=max_impulses)
    entries: List[QueueEntry] = []
    backlog = 0.0
    for task_id in range(queue_length):
        mean = rng.uniform(*mean_range)
        exec_pmf = builder.sample_pair(mean, rng)
        backlog += mean
        slack = rng.uniform(*slack_range)
        deadline = int(now + slack * backlog) + 1
        entries.append(QueueEntry(task_id=task_id, exec_pmf=exec_pmf,
                                  deadline=deadline))
    return MachineQueueView(machine_id=0, now=now, base_pmf=PMF.delta(now),
                            entries=tuple(entries))


@dataclass(frozen=True)
class DroppingAgreementReport:
    """Outcome of the optimal-vs-heuristic agreement ablation.

    Attributes
    ----------
    num_queues:
        Number of synthetic queues evaluated.
    identical_decisions:
        Queues where both policies dropped exactly the same set of tasks.
    mean_robustness_gap:
        Mean difference between the instantaneous robustness achieved by the
        optimal subset and by the heuristic's choice (>= 0 by construction).
    max_robustness_gap:
        Worst-case robustness gap observed.
    mean_drops_optimal / mean_drops_heuristic:
        Average number of tasks dropped per queue by each policy.
    """

    num_queues: int
    identical_decisions: int
    mean_robustness_gap: float
    max_robustness_gap: float
    mean_drops_optimal: float
    mean_drops_heuristic: float

    @property
    def agreement_rate(self) -> float:
        """Fraction of queues where both policies made identical decisions."""
        if self.num_queues == 0:
            return 1.0
        return self.identical_decisions / self.num_queues


def ablation_optimal_vs_heuristic(num_queues: int = 100, queue_length: int = 5,
                                  beta: float = 1.0, eta: int = 2,
                                  seed: int = 7) -> DroppingAgreementReport:
    """Compare optimal and heuristic dropping decisions on synthetic queues."""
    rng = np.random.default_rng(seed)
    optimal = OptimalProactiveDropping()
    heuristic = ProactiveHeuristicDropping(beta=beta, eta=eta)

    identical = 0
    gaps: List[float] = []
    drops_optimal: List[int] = []
    drops_heuristic: List[int] = []
    for _ in range(num_queues):
        view = random_queue_view(rng, queue_length=queue_length)
        opt_decision = optimal.evaluate_queue(view)
        heu_decision = heuristic.evaluate_queue(view)
        drops_optimal.append(opt_decision.num_drops)
        drops_heuristic.append(heu_decision.num_drops)
        if tuple(opt_decision.drop_indices) == tuple(heu_decision.drop_indices):
            identical += 1
        opt_rob = instantaneous_robustness_with_drops(
            view.base_pmf, view.entries, opt_decision.drop_indices)
        heu_rob = instantaneous_robustness_with_drops(
            view.base_pmf, view.entries, heu_decision.drop_indices)
        gaps.append(max(opt_rob - heu_rob, 0.0))

    return DroppingAgreementReport(
        num_queues=num_queues,
        identical_decisions=identical,
        mean_robustness_gap=float(np.mean(gaps)) if gaps else 0.0,
        max_robustness_gap=float(np.max(gaps)) if gaps else 0.0,
        mean_drops_optimal=float(np.mean(drops_optimal)) if drops_optimal else 0.0,
        mean_drops_heuristic=float(np.mean(drops_heuristic)) if drops_heuristic else 0.0,
    )


# ----------------------------------------------------------------------
# A2: PMF resolution
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PMFResolutionPoint:
    """Outcome of one PMF-resolution setting.

    Attributes
    ----------
    max_impulses:
        Histogram bin budget of the PET construction.
    robustness_pct:
        Mean robustness of the end-to-end run with that budget.
    runtime_seconds:
        Wall-clock time of the sweep point (workload + simulation).
    """

    max_impulses: int
    robustness_pct: float
    runtime_seconds: float


def ablation_pmf_resolution(config: ExperimentConfig,
                            impulse_budgets: Sequence[int] = (8, 16, 24, 48),
                            level: str = "30k",
                            mapper: str = "PAM") -> List[PMFResolutionPoint]:
    """End-to-end robustness and runtime versus PET histogram resolution.

    Because the PET resolution is baked into the scenario construction, the
    sweep monkey-patches nothing: it relies on the fact that
    :class:`~repro.workload.pet_builder.GammaPETBuilder` defaults are used by
    the scenario presets, so the ablation instead re-derives robustness with
    a *direct* scenario built at each budget.  The figure-level experiments
    always use the default budget; this ablation documents its adequacy.
    """
    from ..workload import scenario as scenario_module
    from ..workload.pet_builder import GammaPETBuilder as Builder
    points: List[PMFResolutionPoint] = []
    for budget in impulse_budgets:
        start = time.perf_counter()
        # Build a one-off configuration whose scenario uses the requested
        # impulse budget by temporarily adjusting the factory default.
        original = scenario_module.SpecWorkloadFactory
        try:
            values = []
            for k in range(config.trials):
                factory = original(queue_capacity=config.queue_capacity,
                                   pet_builder=Builder(max_impulses=int(budget)))
                rng = np.random.default_rng(config.base_seed + k)
                platform = factory.platform()
                pet = factory.build_pet(rng)
                spec = scenario_module.ScenarioSpec(
                    name="spec", level=level, scale=config.scale,
                    gamma=config.gamma, queue_capacity=config.queue_capacity,
                    seed=config.base_seed + k)
                tasks, rate = scenario_module._generate_tasks(pet, platform, spec, rng)
                scn = scenario_module.Scenario(
                    spec=spec, platform=platform, task_types=factory.task_types(),
                    pet=pet, tasks=tasks, arrival_rate=rate)
                from ..metrics.collector import collect_trial_metrics
                from .runner import TrialSpec, build_system_for_trial
                trial_spec = TrialSpec(
                    scenario_name="spec", level=level, scale=config.scale,
                    gamma=config.gamma, queue_capacity=config.queue_capacity,
                    seed=config.base_seed + k, mapper_name=mapper,
                    dropper_name="heuristic",
                    dropper_params=(("beta", 1.0), ("eta", 2)),
                    batch_window=config.batch_window)
                system = build_system_for_trial(
                    scn, trial_spec, np.random.default_rng(config.base_seed + k + 99))
                values.append(collect_trial_metrics(system.run()).robustness_pct)
            robustness = float(np.mean(values))
        finally:
            pass
        elapsed = time.perf_counter() - start
        points.append(PMFResolutionPoint(max_impulses=int(budget),
                                         robustness_pct=robustness,
                                         runtime_seconds=elapsed))
    return points
