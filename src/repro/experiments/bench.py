"""Performance benchmark harness (``repro bench``).

Two suites share this module:

* **core** pins a handful of oversubscribed scenarios, runs each one twice
  per seed -- a baseline side against a contender side -- verifies that
  both runs produce *identical* ``TrialMetrics``, and records wall-clock
  times, speedups and the cache counters in a JSON payload
  (``BENCH_core.json``).  Classic cases compare the naive
  recompute-everything scheduler views (``incremental=False``) against the
  incremental completion-PMF machinery; ``compare="scoring"`` cases compare
  the per-pair ``loop`` score-plane backend against the batched ``vector``
  engine on wide-window high-oversubscription workloads.  Scenario
  construction happens outside the timed section, so the numbers measure
  the simulation core only.

:func:`compare_to_baseline` also performs per-case regression detection
(``--max-regression-case``): a case whose speedup falls below its own
baseline floor is listed in the exit-3 report even when the geomean gate
passes.
* **sweep** times the persistent-pool sweep executor
  (:class:`~repro.experiments.runner.TrialPool`) against the fresh-pool-
  per-cell behaviour on a pinned mapper x dropper grid and records the
  multi-process throughput (``BENCH_sweep.json``).

:func:`compare_to_baseline` backs ``repro bench --baseline``: it checks a
fresh core payload against a committed one and flags geomean-speedup
regressions (CI runs it with ``--warn-only``).

``benchmarks/perf/`` is the canonical home of the committed payloads::

    python -m repro bench --suite core --scale 0.05 --trials 2 \
        --repeats 5 --output benchmarks/perf/BENCH_core.json
    python -m repro bench --suite sweep --trials 2 --jobs 2 \
        --output benchmarks/perf/BENCH_sweep.json
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.collector import TrialMetrics, collect_trial_metrics
from ..sim.perf import PerfStats
from .runner import TrialSpec, build_system_for_trial

__all__ = ["BenchCase", "BENCH_CASES", "run_perf_benchmark",
           "run_sweep_benchmark", "run_crossover_benchmark",
           "compare_to_baseline",
           "format_bench_table", "format_sweep_table",
           "format_crossover_table",
           "format_baseline_comparison", "write_bench_json",
           "bench_history", "format_bench_trend"]


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark configuration of the core harness.

    ``compare`` selects what the case's two timed runs are:

    * ``"incremental"`` -- the naive recompute-everything scheduler views
      (``incremental=False``) against the incremental completion-PMF
      machinery; the historical core suite.
    * ``"scoring"`` -- the per-pair ``loop`` score-plane backend against
      the batched ``vector`` engine (both incremental); the mapping
      suite.  The payload keeps the ``naive_s`` / ``incremental_s`` keys
      (baseline = first backend, contender = second) so schemas stay
      stable.
    * ``"stream"`` -- the streaming service driver
      (:class:`~repro.stream.service.StreamingSimulation`) pumping steady
      traffic to a scale-derived horizon, naive scheduler views against
      the incremental machinery; pins the service mode's hot path.
      ``level`` is unused (streaming rates come from the spec's
      oversubscription factor).
    * ``"numerics"`` -- the ``numerics="exact"`` fold arithmetic against
      the ``"fast"`` profile (closed-form success scores + batched FFT
      folds), both incremental with the vector score plane.  Unlike every
      other kind, metric divergence does *not* raise: fast scores are
      tolerance-bounded, so a score tie within tolerance may legitimately
      flip an assignment.  The observed equality is recorded honestly in
      ``metrics_equal`` instead (in practice the sides agree, because the
      committed trajectory is always folded exactly).
    * ``"topology"`` -- the naive scheduler views against the incremental
      machinery with the case's platform topology active, so the
      transfer-shifted effective PMFs run through both paths; metric
      divergence raises like the classic cases (the incremental==naive pin
      must survive data-movement costs bit-for-bit).
    """

    name: str
    scenario: str = "spec"
    level: str = "30k"
    mapper: str = "PAM"
    dropper: str = "react"
    dropper_params: Tuple[Tuple[str, float], ...] = ()
    gamma: float = 1.0
    batch_window: int = 32
    compare: str = "incremental"
    topology: str = "uniform"
    topology_params: Tuple[Tuple[str, object], ...] = ()


#: The pinned oversubscribed scenarios of ``BENCH_core.json``: the paper's
#: headline configuration (PAM + autonomous heuristic dropping), a
#: reactive-only baseline, the heaviest oversubscription level, and --
#: ``compare="scoring"`` -- high-oversubscription mapping cases whose
#: relaxed deadlines back the batch queue up into wide (task x machine)
#: score planes, where the vectorised backend's win is measured.
BENCH_CASES: Tuple[BenchCase, ...] = (
    BenchCase(name="spec-30k-PAM-react"),
    BenchCase(name="spec-40k-PAM-react", level="40k"),
    BenchCase(name="spec-30k-PAM-heuristic", dropper="heuristic"),
    BenchCase(name="spec-40k-MM-heuristic", level="40k", mapper="MM",
              dropper="heuristic"),
    BenchCase(name="spec-40k-PAM-plane-g5-w64", level="40k", gamma=5.0,
              batch_window=64, compare="scoring"),
    BenchCase(name="spec-40k-MSD-plane-g5-w64", level="40k", mapper="MSD",
              gamma=5.0, batch_window=64, compare="scoring"),
    BenchCase(name="spec-40k-PAM-fast-g5-w64", level="40k", gamma=5.0,
              batch_window=64, compare="numerics"),
    BenchCase(name="spec-40k-MM-fast-g5-w64", level="40k", mapper="MM",
              gamma=5.0, batch_window=64, compare="numerics"),
    BenchCase(name="stream-steady", dropper="heuristic", compare="stream"),
    BenchCase(name="spec-40k-PAM-tiered", level="40k", dropper="heuristic",
              compare="topology", topology="tiered-edge-cloud",
              topology_params=(("bandwidth", 48.0), ("latency", 2),
                               ("task_bytes", 192))),
)


def _spec_for(case: BenchCase, scale: float, seed: int,
              baseline: bool) -> TrialSpec:
    """Spec of one timed run; ``baseline`` picks the case's reference side."""
    numerics = "exact"
    if case.compare == "scoring":
        incremental = True
        scoring = "loop" if baseline else "vector"
    elif case.compare == "numerics":
        incremental = True
        scoring = "vector"
        numerics = "exact" if baseline else "fast"
    else:
        incremental = not baseline
        scoring = "vector"
    return TrialSpec(scenario_name=case.scenario, level=case.level,
                     scale=scale, gamma=case.gamma, queue_capacity=6,
                     seed=seed, mapper_name=case.mapper,
                     dropper_name=case.dropper,
                     dropper_params=case.dropper_params,
                     batch_window=case.batch_window,
                     incremental=incremental, scoring=scoring,
                     numerics=numerics,
                     topology_name=case.topology,
                     topology_params=case.topology_params)


def _timed_stream_trial(case: BenchCase, scale: float, seed: int,
                        baseline: bool, repeats: int = 1,
                        ) -> Tuple[float, TrialMetrics]:
    """Time the streaming service driver over a scale-derived horizon.

    The horizon is chosen so the run handles roughly the task count of a
    batch trial at the same ``scale`` (30k-level arrivals), keeping stream
    and batch cases comparable in the same payload.  Service construction
    (scenario/PET build) happens outside the timed section.
    """
    from ..stream import StreamSpec, StreamingSimulation

    spec = StreamSpec(scenario_name=case.scenario, traffic_name="steady",
                      gamma=case.gamma, batch_window=case.batch_window,
                      seed=seed, mapper_name=case.mapper,
                      dropper_name=case.dropper,
                      dropper_params=case.dropper_params,
                      incremental=not baseline)
    best = None
    metrics = None
    for _ in range(max(1, int(repeats))):
        service = StreamingSimulation(spec)
        horizon = int(round(30_000 * scale / service.arrival_rate))
        start = time.perf_counter()
        service.run_until(horizon)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            metrics = service.metrics()
    return best, metrics


def _timed_trial(case: BenchCase, scale: float, seed: int,
                 baseline: bool, repeats: int = 1,
                 ) -> Tuple[float, TrialMetrics]:
    """Build the scenario untimed, then time ``system.run()`` alone.

    With ``repeats > 1`` the run is repeated on the same scenario and the
    *minimum* wall-clock is reported -- the standard noise shield on busy
    or single-core machines (runs are seed-deterministic, so every repeat
    produces identical metrics).
    """
    from ..workload.scenario import build_scenario

    if case.compare == "stream":
        return _timed_stream_trial(case, scale, seed, baseline, repeats)
    spec = _spec_for(case, scale, seed, baseline)
    scenario = build_scenario(spec.scenario_name, level=spec.level,
                              scale=spec.scale, gamma=spec.gamma,
                              seed=spec.seed,
                              queue_capacity=spec.queue_capacity)
    best = None
    metrics = None
    for _ in range(max(1, int(repeats))):
        rng = np.random.default_rng(spec.seed + 1_000_003)
        system = build_system_for_trial(scenario, spec, rng)
        start = time.perf_counter()
        result = system.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            metrics = collect_trial_metrics(result)
    return best, metrics


def run_perf_benchmark(scale: float = 0.05, trials: int = 2,
                       base_seed: int = 42,
                       cases: Optional[Sequence[BenchCase]] = None,
                       names: Optional[Sequence[str]] = None,
                       repeats: int = 1) -> Dict[str, Any]:
    """Run the pinned benchmark cases and return the JSON payload.

    ``repeats`` times each (case, seed, side) run that many times and
    records the min -- use ``repeats=3`` for committed payloads so the
    recorded speedups are min-of-3 rather than single samples.

    Raises ``RuntimeError`` if any case's contender run does not produce
    metrics identical to its baseline run -- the harness doubles as an
    end-to-end equivalence check (naive==incremental for classic and
    topology cases, loop==vector for the scoring cases).  ``compare="numerics"`` cases are
    exempt from the raise: ``fast`` is tolerance-bounded, so a score tie
    within tolerance may flip an assignment; the observed equality is
    recorded in the entry's ``metrics_equal`` instead.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if trials < 1:
        raise ValueError("need at least one trial")
    if repeats < 1:
        raise ValueError("need at least one repeat")
    selected = list(cases if cases is not None else BENCH_CASES)
    if names:
        wanted = set(names)
        selected = [c for c in selected if c.name in wanted]
        missing = wanted - {c.name for c in selected}
        if missing:
            known = ", ".join(sorted(c.name for c in BENCH_CASES))
            raise ValueError(f"unknown benchmark case(s) {sorted(missing)}; "
                             f"known: {known}")
    if not selected:
        raise ValueError("no benchmark cases selected")

    entries: List[Dict[str, Any]] = []
    for case in selected:
        naive_s = 0.0
        incremental_s = 0.0
        robustness = 0.0
        naive_stats: List[Optional[PerfStats]] = []
        incremental_stats: List[Optional[PerfStats]] = []
        metrics_equal = True
        for k in range(trials):
            seed = base_seed + k
            n_time, n_metrics = _timed_trial(case, scale, seed, True,
                                             repeats)
            i_time, i_metrics = _timed_trial(case, scale, seed, False,
                                             repeats)
            if n_metrics != i_metrics:
                if case.compare == "numerics":
                    # Documented divergence policy: fast scores are
                    # tolerance-bounded, so ties within tolerance may flip
                    # an assignment.  Record honestly, don't fail.
                    metrics_equal = False
                else:
                    sides = ("vector scoring", "loop backend") \
                        if case.compare == "scoring" else ("incremental",
                                                          "naive path")
                    raise RuntimeError(
                        f"benchmark case {case.name} (seed {seed}): "
                        f"{sides[0]} metrics diverged from the {sides[1]}")
            naive_s += n_time
            incremental_s += i_time
            robustness += i_metrics.robustness_pct / trials
            naive_stats.append(n_metrics.perf)
            incremental_stats.append(i_metrics.perf)
        # Counters are summed over all trials, consistent with the summed
        # wall-clock times above.
        naive_merged = PerfStats.merged(naive_stats)
        incremental_merged = PerfStats.merged(incremental_stats)
        naive_perf = naive_merged.to_dict() if naive_merged else None
        incremental_perf = (incremental_merged.to_dict()
                            if incremental_merged else None)
        entries.append({
            "name": case.name,
            "scenario": case.scenario,
            "level": case.level,
            "mapper": case.mapper,
            "dropper": case.dropper,
            "compare": case.compare,
            "naive_s": naive_s,
            "incremental_s": incremental_s,
            "speedup": naive_s / incremental_s if incremental_s > 0 else 0.0,
            "robustness_pct": robustness,
            "metrics_equal": metrics_equal,
            "naive_perf": naive_perf,
            "incremental_perf": incremental_perf,
        })

    speedups = [e["speedup"] for e in entries]
    return {
        "benchmark": "core",
        "scale": scale,
        "trials": trials,
        "repeats": repeats,
        "base_seed": base_seed,
        "scenarios": entries,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
    }


def run_sweep_benchmark(scale: float = 0.02, trials: int = 2,
                        n_jobs: int = 2, base_seed: int = 42) -> Dict[str, Any]:
    """Benchmark the persistent-pool sweep executor (``BENCH_sweep.json``).

    Runs the pinned mapper x dropper grid twice with ``n_jobs`` workers:
    once the way PR 2 executed sweeps (one fresh worker pool per grid cell,
    scenario rebuilt inside every worker trial) and once on a single warm
    :class:`~repro.experiments.runner.TrialPool` (workers persist across
    cells, scenarios shipped once through the initializer).  Both runs must
    produce identical per-trial metrics -- the trials cross process
    boundaries, so this also exercises PMF re-interning on unpickle.
    """
    from ..api.builder import Simulation

    if trials < 1:
        raise ValueError("need at least one trial")
    if n_jobs < 1:
        raise ValueError("n_jobs must be at least 1")
    grid = {"mapper": ["PAM", "MM"], "dropper": ["heuristic", "react"]}
    base = (Simulation.scenario("spec").level("30k").scale(scale)
            .trials(trials, base_seed=base_seed))

    # Cold: the pre-TrialPool behaviour -- each cell pays pool startup and
    # per-trial scenario construction in the workers.
    from ..experiments.runner import run_trials

    cold_cells = []
    start = time.perf_counter()
    for mapper in grid["mapper"]:
        for dropper in grid["dropper"]:
            sim = base.mapper(mapper).dropper(dropper)
            cold_cells.append(run_trials(sim.build_specs(), n_jobs=n_jobs))
    cold_s = time.perf_counter() - start

    # Warm: one persistent pool for the whole grid.
    start = time.perf_counter()
    sweep = base.parallel(n_jobs).sweep(**grid)
    warm_s = time.perf_counter() - start

    cells = []
    equal = True
    for run, cold_trials in zip(sweep.runs, cold_cells):
        cell_equal = list(run.trials) == list(cold_trials)
        equal = equal and cell_equal
        perf = run.perf
        cells.append({
            "label": run.label,
            "robustness_pct": run.robustness_pct,
            "metrics_equal": cell_equal,
            "perf": perf.to_dict() if perf is not None else None,
        })
    total_trials = len(sweep.runs) * trials
    return {
        "benchmark": "sweep",
        "scale": scale,
        "trials": trials,
        "n_jobs": n_jobs,
        "base_seed": base_seed,
        "grid": grid,
        "cells": cells,
        "metrics_equal": equal,
        "cold_pool_s": cold_s,
        "warm_pool_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "total_trials": total_trials,
        "throughput_trials_per_s": total_trials / warm_s if warm_s > 0 else 0.0,
    }


def run_crossover_benchmark(scale: float = 0.02, trials: int = 2,
                            base_seed: int = 42, max_tasks: int = 8,
                            repeats: int = 1) -> Dict[str, Any]:
    """Measure the vector-vs-loop small-plane crossover on this platform.

    The vector score-plane backend routes mapping events whose plane is at
    most :data:`~repro.mapping.kernel.SMALL_PLANE_TASKS` tasks wide to the
    per-pair loop path, because NumPy's batched kernels only amortise
    their setup cost past some plane width -- and that width is a property
    of the host BLAS/NumPy build, not of the workload.  This micro suite
    measures it instead of trusting the pinned constant: for every plane
    width ``w`` in ``1..max_tasks`` it runs the paper's headline
    oversubscribed configuration with ``batch_window=w`` (heavy backlog
    keeps the batch queue full, so planes sit at the cap) twice -- once
    with ``small_plane_tasks`` forced above ``w`` (always the loop path)
    and once forced to 0 (always the vector kernels) -- and reports the
    largest width where the loop still wins.  That number is the
    platform's measured ``SystemConfig.small_plane_tasks`` override; the
    committed default documents the measurement on the reference machine.

    Both sides run ``numerics="exact"``, so their metrics must match
    bit-for-bit; a mismatch raises like the core suite's scoring cases.
    """
    from ..mapping.kernel import SMALL_PLANE_TASKS
    from ..workload.scenario import build_scenario

    if scale <= 0:
        raise ValueError("scale must be positive")
    if trials < 1:
        raise ValueError("need at least one trial")
    if max_tasks < 1:
        raise ValueError("need at least one plane width")

    def timed(spec: TrialSpec) -> Tuple[float, TrialMetrics]:
        scenario = build_scenario(spec.scenario_name, level=spec.level,
                                  scale=spec.scale, gamma=spec.gamma,
                                  seed=spec.seed,
                                  queue_capacity=spec.queue_capacity)
        best = None
        metrics = None
        for _ in range(max(1, int(repeats))):
            rng = np.random.default_rng(spec.seed + 1_000_003)
            system = build_system_for_trial(scenario, spec, rng)
            start = time.perf_counter()
            result = system.run()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
                metrics = collect_trial_metrics(result)
        return best, metrics

    widths: List[Dict[str, Any]] = []
    for w in range(1, max_tasks + 1):
        loop_s = 0.0
        vector_s = 0.0
        for k in range(trials):
            base = dict(scenario_name="spec", level="40k", scale=scale,
                        gamma=5.0, queue_capacity=6, seed=base_seed + k,
                        mapper_name="PAM", dropper_name="react",
                        batch_window=w, incremental=True, scoring="vector")
            l_time, l_metrics = timed(
                TrialSpec(small_plane_tasks=max_tasks + 1, **base))
            v_time, v_metrics = timed(TrialSpec(small_plane_tasks=0, **base))
            if l_metrics != v_metrics:
                raise RuntimeError(
                    f"crossover width {w} (seed {base_seed + k}): vector "
                    f"kernel metrics diverged from the loop path")
            loop_s += l_time
            vector_s += v_time
        widths.append({
            "tasks": w,
            "loop_s": loop_s,
            "vector_s": vector_s,
            "speedup": loop_s / vector_s if vector_s > 0 else 0.0,
            "vector_wins": vector_s < loop_s,
        })

    # Recommended threshold: the largest width where the loop path still
    # wins (every plane up to that width should take the fallback).  A
    # vector win at every width measures as 0.
    measured = 0
    for entry in widths:
        if not entry["vector_wins"]:
            measured = entry["tasks"]
    return {
        "benchmark": "crossover",
        "scale": scale,
        "trials": trials,
        "repeats": repeats,
        "base_seed": base_seed,
        "mapper": "PAM",
        "level": "40k",
        "gamma": 5.0,
        "widths": widths,
        "measured_small_plane_tasks": measured,
        "pinned_default": SMALL_PLANE_TASKS,
    }


def format_crossover_table(payload: Dict[str, Any]) -> str:
    """Aligned human-readable summary of a crossover benchmark payload."""
    from .reporting import format_aligned_table

    headers = ["plane_tasks", "loop_s", "vector_s", "loop/vector", "winner"]
    rows = [[str(e["tasks"]), f"{e['loop_s']:.3f}", f"{e['vector_s']:.3f}",
             f"{e['speedup']:.2f}x",
             "vector" if e["vector_wins"] else "loop"]
            for e in payload["widths"]]
    return (format_aligned_table(headers, rows)
            + f"\nmeasured small-plane threshold: "
              f"{payload['measured_small_plane_tasks']} task(s) "
              f"(pinned default {payload['pinned_default']}; override via "
              f"SystemConfig.small_plane_tasks)")


def compare_to_baseline(payload: Dict[str, Any], baseline: Dict[str, Any],
                        max_regression: float = 0.1,
                        max_regression_case: Optional[float] = None,
                        ) -> Dict[str, Any]:
    """Compare a fresh core-bench payload against a committed baseline.

    The headline figure is ``geomean_speedup``, which is scale- and
    machine-robust in a way raw wall-clock times are not; ``regressed`` is
    set when the fresh geomean falls more than ``max_regression``
    (fractional) below the baseline's.

    With ``max_regression_case`` the comparison additionally checks every
    *case* present in both payloads (matched by name): a case whose
    speedup falls more than that fraction below its baseline speedup is
    listed in ``regressed_cases`` and also sets ``regressed``, so a
    regression confined to one scenario cannot hide inside a healthy
    geomean.  Cases only present on one side are reported in
    ``new_cases`` / ``missing_cases`` and never flag.
    """
    if max_regression < 0:
        raise ValueError("max_regression cannot be negative")
    if max_regression_case is not None and max_regression_case < 0:
        raise ValueError("max_regression_case cannot be negative")
    for name, part in (("payload", payload), ("baseline", baseline)):
        if "geomean_speedup" not in part:
            raise ValueError(f"{name} carries no geomean_speedup; is it a "
                             f"'core' benchmark payload?")
    current = float(payload["geomean_speedup"])
    reference = float(baseline["geomean_speedup"])
    floor = reference * (1.0 - max_regression)

    base_by_name = {e["name"]: e for e in baseline.get("scenarios", ())}
    fresh_by_name = {e["name"]: e for e in payload.get("scenarios", ())}
    cases: List[Dict[str, Any]] = []
    regressed_cases: List[str] = []
    for name, entry in fresh_by_name.items():
        ref = base_by_name.get(name)
        if ref is None:
            continue
        case_current = float(entry["speedup"])
        case_reference = float(ref["speedup"])
        case = {
            "name": name,
            "baseline_speedup": case_reference,
            "current_speedup": case_current,
            "ratio": (case_current / case_reference
                      if case_reference > 0 else 0.0),
        }
        if max_regression_case is not None:
            case_floor = case_reference * (1.0 - max_regression_case)
            case["floor"] = case_floor
            case["regressed"] = case_current < case_floor
            if case["regressed"]:
                regressed_cases.append(name)
        cases.append(case)

    return {
        "baseline_geomean": reference,
        "current_geomean": current,
        "ratio": current / reference if reference > 0 else 0.0,
        "floor": floor,
        "max_regression": max_regression,
        "max_regression_case": max_regression_case,
        "cases": cases,
        "regressed_cases": regressed_cases,
        "new_cases": sorted(set(fresh_by_name) - set(base_by_name)),
        "missing_cases": sorted(set(base_by_name) - set(fresh_by_name)),
        "geomean_regressed": current < floor,
        "regressed": current < floor or bool(regressed_cases),
        "baseline_scale": baseline.get("scale"),
        "current_scale": payload.get("scale"),
    }


def format_baseline_comparison(comparison: Dict[str, Any]) -> str:
    """Verdict of :func:`compare_to_baseline`, offending cases included."""
    verdict = "REGRESSION" if comparison["regressed"] else "ok"
    lines = [f"baseline geomean {comparison['baseline_geomean']:.2f}x "
             f"(scale={comparison['baseline_scale']}) vs current "
             f"{comparison['current_geomean']:.2f}x "
             f"(scale={comparison['current_scale']}): "
             f"{comparison['ratio']:.2f}x of baseline, floor "
             f"{comparison['floor']:.2f}x -> {verdict}"]
    by_name = {c["name"]: c for c in comparison.get("cases", ())}
    for name in comparison.get("regressed_cases", ()):
        case = by_name[name]
        lines.append(f"  case {name}: {case['baseline_speedup']:.2f}x -> "
                     f"{case['current_speedup']:.2f}x "
                     f"({case['ratio']:.2f}x of baseline, floor "
                     f"{case['floor']:.2f}x) REGRESSION")
    for name in comparison.get("missing_cases", ()):
        lines.append(f"  case {name}: in baseline only (not compared)")
    for name in comparison.get("new_cases", ()):
        lines.append(f"  case {name}: new, no baseline (not compared)")
    return "\n".join(lines)


def format_sweep_table(payload: Dict[str, Any]) -> str:
    """Aligned human-readable summary of a sweep benchmark payload."""
    from .reporting import format_aligned_table

    headers = ["cell", "robustness", "metrics_equal"]
    rows = [[c["label"], f"{c['robustness_pct']:.2f}%", str(c["metrics_equal"])]
            for c in payload["cells"]]
    return (format_aligned_table(headers, rows)
            + f"\ncold pool: {payload['cold_pool_s']:.3f}s  warm pool: "
              f"{payload['warm_pool_s']:.3f}s  speedup: "
              f"{payload['speedup']:.2f}x  throughput: "
              f"{payload['throughput_trials_per_s']:.2f} trials/s "
              f"(n_jobs={payload['n_jobs']}, scale={payload['scale']})")


def format_bench_table(payload: Dict[str, Any]) -> str:
    """Aligned human-readable summary of a benchmark payload."""
    from .reporting import format_aligned_table

    headers = ["case", "compare", "baseline_s", "contender_s", "speedup",
               "robustness"]
    rows = [[e["name"], e.get("compare", "incremental"),
             f"{e['naive_s']:.3f}", f"{e['incremental_s']:.3f}",
             f"{e['speedup']:.2f}x", f"{e['robustness_pct']:.2f}%"]
            for e in payload["scenarios"]]
    repeats = payload.get("repeats", 1)
    suffix = f", min-of-{repeats}" if repeats > 1 else ""
    return (format_aligned_table(headers, rows)
            + f"\ngeomean speedup: {payload['geomean_speedup']:.2f}x "
              f"(scale={payload['scale']}, trials={payload['trials']}"
              f"{suffix})")


def bench_history(path: str = "benchmarks/perf/BENCH_core.json",
                  limit: Optional[int] = None,
                  repo_root: Optional[str] = None) -> Dict[str, Any]:
    """Speedup history of a committed bench payload across git commits.

    Walks ``git log`` for every commit touching ``path``, reads the payload
    as of each commit (``git show <sha>:<path>``) and extracts the geomean
    plus per-case speedups.  Commits where the file is missing or not a core
    payload are skipped, so the history survives schema growth.  Raises
    :class:`RuntimeError` outside a git work tree or when no commit carries
    a readable payload -- ``repro bench --trend`` turns that into a clean
    exit-2 message.
    """
    import subprocess

    root = os.path.abspath(repo_root or os.getcwd())
    absolute = path if os.path.isabs(path) else os.path.join(root, path)
    rel = os.path.relpath(absolute, root)

    def _git(*argv: str) -> "subprocess.CompletedProcess":
        return subprocess.run(["git", *argv], cwd=root, capture_output=True,
                              text=True)

    log = _git("log", "--format=%H%x00%h%x00%ct%x00%s", "--", rel)
    if log.returncode != 0:
        raise RuntimeError(f"git log failed under {root!r}: "
                           f"{log.stderr.strip() or 'is this a git repo?'}")
    commits: List[Dict[str, Any]] = []
    for line in log.stdout.splitlines():
        if not line.strip():
            continue
        sha, short, timestamp, subject = line.split("\x00", 3)
        show = _git("show", f"{sha}:{rel}")
        if show.returncode != 0:
            continue  # file absent at this commit (e.g. before it existed)
        try:
            payload = json.loads(show.stdout)
        except json.JSONDecodeError:
            continue
        if "geomean_speedup" not in payload:
            continue  # not a core payload at this point of history
        commits.append({
            "sha": sha,
            "short": short,
            "timestamp": int(timestamp),
            "subject": subject,
            "geomean_speedup": float(payload["geomean_speedup"]),
            "scale": payload.get("scale"),
            "cases": {e["name"]: float(e["speedup"])
                      for e in payload.get("scenarios", ())},
        })
    commits.reverse()  # oldest first, so the chart reads left to right
    if limit is not None and limit > 0:
        commits = commits[-limit:]
    if not commits:
        raise RuntimeError(f"no commit under {root!r} carries a readable "
                           f"core bench payload at {rel!r}")
    return {"path": rel, "commits": commits}


def format_bench_trend(history: Dict[str, Any], width: int = 60,
                       height: int = 12) -> str:
    """ASCII chart + table of a payload's speedup trajectory over commits."""
    from ..viz.ascii_charts import line_chart
    from .reporting import format_aligned_table

    commits = history["commits"]
    x_values = [c["short"] for c in commits]
    series: Dict[str, List[float]] = {
        "geomean": [c["geomean_speedup"] for c in commits]}
    # Only cases present at every commit chart cleanly; newcomers are still
    # visible in the table below.
    common = set(commits[0]["cases"])
    for commit in commits[1:]:
        common &= set(commit["cases"])
    for name in sorted(common):
        series[name] = [c["cases"][name] for c in commits]
    chart = ""
    if len(commits) > 1:
        chart = line_chart(series, x_values, height=height, width=width,
                           title=f"speedup history of {history['path']} "
                                 f"({len(commits)} commits)",
                           y_label="x") + "\n\n"
    headers = ["commit", "geomean", "scale", "subject"]
    rows = [[c["short"], f"{c['geomean_speedup']:.2f}x", str(c["scale"]),
             c["subject"][:56]] for c in commits]
    return chart + format_aligned_table(headers, rows)


def write_bench_json(payload: Dict[str, Any], path: str) -> None:
    """Persist a benchmark payload as pretty-printed JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
