"""Core-simulator performance benchmark harness (``repro bench``).

The harness pins a handful of oversubscribed scenarios, runs each one twice
per seed -- once with the naive recompute-everything scheduler views
(``incremental=False``) and once with the incremental completion-PMF caches
-- verifies that both runs produce *identical* ``TrialMetrics``, and records
wall-clock times, speedups and the cache counters in a JSON payload
(``BENCH_core.json``).  Scenario construction happens outside the timed
section, so the numbers measure the simulation core only.

The committed ``benchmarks/perf/BENCH_core.json`` is regenerated with::

    python -m repro bench --scale 0.05 --trials 2 \
        --output benchmarks/perf/BENCH_core.json
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.collector import TrialMetrics, collect_trial_metrics
from ..sim.perf import PerfStats
from .runner import TrialSpec, build_system_for_trial

__all__ = ["BenchCase", "BENCH_CASES", "run_perf_benchmark",
           "format_bench_table", "write_bench_json"]


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark configuration of the core harness."""

    name: str
    scenario: str = "spec"
    level: str = "30k"
    mapper: str = "PAM"
    dropper: str = "react"
    dropper_params: Tuple[Tuple[str, float], ...] = ()


#: The pinned oversubscribed scenarios of ``BENCH_core.json``: the paper's
#: headline configuration (PAM + autonomous heuristic dropping), a
#: reactive-only baseline, and the heaviest oversubscription level.
BENCH_CASES: Tuple[BenchCase, ...] = (
    BenchCase(name="spec-30k-PAM-react"),
    BenchCase(name="spec-40k-PAM-react", level="40k"),
    BenchCase(name="spec-30k-PAM-heuristic", dropper="heuristic"),
    BenchCase(name="spec-40k-MM-heuristic", level="40k", mapper="MM",
              dropper="heuristic"),
)


def _spec_for(case: BenchCase, scale: float, seed: int,
              incremental: bool) -> TrialSpec:
    return TrialSpec(scenario_name=case.scenario, level=case.level,
                     scale=scale, gamma=1.0, queue_capacity=6, seed=seed,
                     mapper_name=case.mapper, dropper_name=case.dropper,
                     dropper_params=case.dropper_params,
                     incremental=incremental)


def _timed_trial(case: BenchCase, scale: float, seed: int,
                 incremental: bool) -> Tuple[float, TrialMetrics]:
    """Build the scenario untimed, then time ``system.run()`` alone."""
    from ..workload.scenario import build_scenario

    spec = _spec_for(case, scale, seed, incremental)
    scenario = build_scenario(spec.scenario_name, level=spec.level,
                              scale=spec.scale, gamma=spec.gamma,
                              seed=spec.seed,
                              queue_capacity=spec.queue_capacity)
    rng = np.random.default_rng(spec.seed + 1_000_003)
    system = build_system_for_trial(scenario, spec, rng)
    start = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - start
    return elapsed, collect_trial_metrics(result)


def run_perf_benchmark(scale: float = 0.05, trials: int = 2,
                       base_seed: int = 42,
                       cases: Optional[Sequence[BenchCase]] = None,
                       names: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    """Run the pinned benchmark cases and return the JSON payload.

    Raises ``RuntimeError`` if any case's incremental run does not produce
    metrics identical to the naive run -- the harness doubles as an
    end-to-end equivalence check.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if trials < 1:
        raise ValueError("need at least one trial")
    selected = list(cases if cases is not None else BENCH_CASES)
    if names:
        wanted = set(names)
        selected = [c for c in selected if c.name in wanted]
        missing = wanted - {c.name for c in selected}
        if missing:
            known = ", ".join(sorted(c.name for c in BENCH_CASES))
            raise ValueError(f"unknown benchmark case(s) {sorted(missing)}; "
                             f"known: {known}")
    if not selected:
        raise ValueError("no benchmark cases selected")

    entries: List[Dict[str, Any]] = []
    for case in selected:
        naive_s = 0.0
        incremental_s = 0.0
        robustness = 0.0
        naive_stats: List[Optional[PerfStats]] = []
        incremental_stats: List[Optional[PerfStats]] = []
        for k in range(trials):
            seed = base_seed + k
            n_time, n_metrics = _timed_trial(case, scale, seed, False)
            i_time, i_metrics = _timed_trial(case, scale, seed, True)
            if n_metrics != i_metrics:
                raise RuntimeError(
                    f"benchmark case {case.name} (seed {seed}): incremental "
                    f"metrics diverged from the naive path")
            naive_s += n_time
            incremental_s += i_time
            robustness += i_metrics.robustness_pct / trials
            naive_stats.append(n_metrics.perf)
            incremental_stats.append(i_metrics.perf)
        # Counters are summed over all trials, consistent with the summed
        # wall-clock times above.
        naive_merged = PerfStats.merged(naive_stats)
        incremental_merged = PerfStats.merged(incremental_stats)
        naive_perf = naive_merged.to_dict() if naive_merged else None
        incremental_perf = (incremental_merged.to_dict()
                            if incremental_merged else None)
        entries.append({
            "name": case.name,
            "scenario": case.scenario,
            "level": case.level,
            "mapper": case.mapper,
            "dropper": case.dropper,
            "naive_s": naive_s,
            "incremental_s": incremental_s,
            "speedup": naive_s / incremental_s if incremental_s > 0 else 0.0,
            "robustness_pct": robustness,
            "metrics_equal": True,
            "naive_perf": naive_perf,
            "incremental_perf": incremental_perf,
        })

    speedups = [e["speedup"] for e in entries]
    return {
        "benchmark": "core",
        "scale": scale,
        "trials": trials,
        "base_seed": base_seed,
        "scenarios": entries,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
    }


def format_bench_table(payload: Dict[str, Any]) -> str:
    """Aligned human-readable summary of a benchmark payload."""
    from .reporting import format_aligned_table

    headers = ["case", "naive_s", "incremental_s", "speedup", "robustness"]
    rows = [[e["name"], f"{e['naive_s']:.3f}", f"{e['incremental_s']:.3f}",
             f"{e['speedup']:.2f}x", f"{e['robustness_pct']:.2f}%"]
            for e in payload["scenarios"]]
    return (format_aligned_table(headers, rows)
            + f"\ngeomean speedup: {payload['geomean_speedup']:.2f}x "
              f"(scale={payload['scale']}, trials={payload['trials']})")


def write_bench_json(payload: Dict[str, Any], path: str) -> None:
    """Persist a benchmark payload as pretty-printed JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
