"""Plain-text reporting of figure results.

The experiment harness prints the same rows/series the paper's figures plot;
these helpers render them as aligned text tables suitable for terminals,
logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .figures import FigureResult

__all__ = ["format_aligned_table", "format_figure_table",
           "format_series_summary", "format_comparison"]


def format_aligned_table(headers: Sequence[str],
                         rows: Sequence[Sequence[str]]) -> str:
    """Render string rows as an aligned table with a dashed separator.

    Shared by the sweep-result tables and the perf-benchmark report so the
    column layout stays consistent everywhere.
    """
    widths = [max(len(h), *(len(r[i]) for r in rows)) + 2 if rows else len(h) + 2
              for i, h in enumerate(headers)]
    lines = ["".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("".join("-" * (w - 2) + "  " for w in widths).rstrip())
    for cells in rows:
        lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def _auto_precision(values, requested: int) -> int:
    """Pick a decimal precision that keeps small metric values visible.

    Percentage-scale figures read well with two decimals, but the normalised
    cost metric of Fig. 9 can be orders of magnitude below one at laptop
    scale; the precision is widened until the largest value has at least two
    significant digits (capped at eight decimals).
    """
    finite = [abs(v) for v in values if v == v and abs(v) != float("inf") and v != 0.0]
    if not finite:
        return requested
    largest = max(finite)
    precision = requested
    while largest < 10 ** (1 - precision) and precision < 8:
        precision += 1
    return precision


def format_figure_table(figure: FigureResult, precision: int = 2) -> str:
    """Render a figure result as an aligned text table.

    One row per (series, x) pair with the mean and confidence bounds of the
    plotted metric.  The decimal precision widens automatically when the
    metric values are far below one (e.g. normalised dollar costs).
    """
    header = f"{figure.title}\n{'=' * len(figure.title)}"
    col_series = max([len("series")] + [len(s) for s in figure.series]) + 2
    rows = figure.to_rows()
    precision = _auto_precision([r[2] for r in rows], precision)
    lines = [header,
             f"{'series'.ljust(col_series)}{figure.x_label:>24}"
             f"{figure.y_label:>34}{'95% CI':>22}"]
    for series, x, mean, lower, upper in rows:
        ci = f"[{lower:.{precision}f}, {upper:.{precision}f}]"
        lines.append(f"{series.ljust(col_series)}{str(x):>24}"
                     f"{mean:>34.{precision}f}{ci:>22}")
    return "\n".join(lines)


def format_series_summary(figure: FigureResult, precision: int = 2) -> str:
    """One line per series: its mean metric across all x values."""
    lines = [f"{figure.figure_id}: {figure.title}"]
    for name, points in figure.series.items():
        values = [p.value for p in points]
        mean = sum(values) / len(values)
        lines.append(f"  {name:<28} mean={mean:.{precision}f} over {len(values)} points")
    return "\n".join(lines)


def format_comparison(labels: Sequence[str], values: Sequence[float],
                      title: str = "", precision: int = 2) -> str:
    """Small helper to print label/value pairs as an aligned block."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    width = max((len(label) for label in labels), default=0) + 2
    lines = [title] if title else []
    for label, value in zip(labels, values):
        lines.append(f"  {label.ljust(width)}{value:.{precision}f}")
    return "\n".join(lines)
