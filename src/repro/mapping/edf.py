"""Earliest-Deadline-First (EDF) mapping heuristic.

Tasks with the soonest deadlines are mapped first; each goes to the free
machine with the minimum expected completion time.  EDF is one of the
homogeneous-system baselines of Fig. 7b.
"""

from __future__ import annotations

from typing import Tuple

from .base import MappingContext, OrderedMappingHeuristic, TaskView

__all__ = ["EDF"]


class EDF(OrderedMappingHeuristic):
    """Map the most urgent (soonest-deadline) tasks first."""

    name = "EDF"

    def task_priority(self, ctx: MappingContext, task: TaskView) -> Tuple[float, ...]:
        """Sooner deadlines are mapped first."""
        return (float(task.deadline), float(task.arrival))
