"""Earliest-Deadline-First (EDF) mapping heuristic.

Tasks with the soonest deadlines are mapped first; each goes to the free
machine with the minimum expected completion time.  EDF is one of the
homogeneous-system baselines of Fig. 7b.
"""

from __future__ import annotations

from .base import OrderedMappingHeuristic

__all__ = ["EDF"]


class EDF(OrderedMappingHeuristic):
    """Map the most urgent (soonest-deadline) tasks first.

    Declared as a one-phase spec (soonest deadline first, arrival order on
    ties), so the vector scoring backend batches the expected-completion
    plane instead of scoring machine candidates pair by pair.
    """

    name = "EDF"
    priority_columns = ("deadline", "arrival")
