"""Mapping heuristics for heterogeneous and homogeneous systems."""

from .base import (Assignment, MachineState, MappingContext, MappingHeuristic,
                   OrderedMappingHeuristic, TaskView, TwoPhaseMappingHeuristic)
from .edf import EDF
from .fcfs import FCFS
from .minmin import MinMin
from .msd import MSD
from .pam import PAM
from .sjf import SJF

#: Registry of mapping heuristics by short name, used by the experiment CLI.
HEURISTIC_REGISTRY = {
    "MM": MinMin,
    "MinMin": MinMin,
    "MSD": MSD,
    "PAM": PAM,
    "FCFS": FCFS,
    "SJF": SJF,
    "EDF": EDF,
}


def make_heuristic(name: str) -> MappingHeuristic:
    """Instantiate a mapping heuristic from its registry name."""
    try:
        return HEURISTIC_REGISTRY[name]()
    except KeyError as exc:
        raise KeyError(f"unknown mapping heuristic {name!r}; known: "
                       f"{sorted(set(HEURISTIC_REGISTRY))}") from exc


__all__ = [
    "Assignment",
    "MachineState",
    "MappingContext",
    "MappingHeuristic",
    "TwoPhaseMappingHeuristic",
    "OrderedMappingHeuristic",
    "TaskView",
    "MinMin",
    "MSD",
    "PAM",
    "FCFS",
    "SJF",
    "EDF",
    "HEURISTIC_REGISTRY",
    "make_heuristic",
]
