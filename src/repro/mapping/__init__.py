"""Mapping heuristics for heterogeneous and homogeneous systems."""

from .base import (Assignment, MachineState, MappingContext, MappingHeuristic,
                   OrderedMappingHeuristic, ScoreSpec, TaskView,
                   TwoPhaseMappingHeuristic)
from .kernel import SCORE_COLUMNS, ScoreColumn, register_score_column
from .edf import EDF
from .fcfs import FCFS
from .minmin import MinMin
from .msd import MSD
from .pam import PAM
from .sjf import SJF

#: Mapping heuristics by short name.  Read-only legacy view kept for
#: backward compatibility -- mutating this dict has no effect; the
#: canonical registry is :data:`repro.api.registries.MAPPERS` and anything
#: registered there is automatically available to :func:`make_heuristic`,
#: the fluent builder and the CLI.
HEURISTIC_REGISTRY = {
    "MM": MinMin,
    "MinMin": MinMin,
    "MSD": MSD,
    "PAM": PAM,
    "FCFS": FCFS,
    "SJF": SJF,
    "EDF": EDF,
}


def make_heuristic(name: str, **params) -> MappingHeuristic:
    """Instantiate a mapping heuristic from its registry name."""
    from ..api.registries import MAPPERS
    return MAPPERS.create(name, **params)


__all__ = [
    "Assignment",
    "MachineState",
    "MappingContext",
    "MappingHeuristic",
    "TwoPhaseMappingHeuristic",
    "OrderedMappingHeuristic",
    "ScoreSpec",
    "ScoreColumn",
    "SCORE_COLUMNS",
    "register_score_column",
    "TaskView",
    "MinMin",
    "MSD",
    "PAM",
    "FCFS",
    "SJF",
    "EDF",
    "HEURISTIC_REGISTRY",
    "make_heuristic",
]
