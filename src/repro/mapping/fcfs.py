"""First-Come-First-Serve (FCFS) mapping heuristic.

Tasks are mapped strictly in arrival order; each task goes to the free
machine with the minimum expected completion time (in a homogeneous system
that is simply the machine that becomes available first).  FCFS is one of the
homogeneous-system baselines of Fig. 7b.
"""

from __future__ import annotations

from .base import OrderedMappingHeuristic

__all__ = ["FCFS"]


class FCFS(OrderedMappingHeuristic):
    """Map tasks in arrival order.

    Declared as a one-phase spec (earlier arrivals win each round), so the
    vector scoring backend batches the expected-completion plane instead of
    scoring machine candidates pair by pair.
    """

    name = "FCFS"
    priority_columns = ("arrival",)
