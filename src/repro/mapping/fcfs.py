"""First-Come-First-Serve (FCFS) mapping heuristic.

Tasks are mapped strictly in arrival order; each task goes to the free
machine with the minimum expected completion time (in a homogeneous system
that is simply the machine that becomes available first).  FCFS is one of the
homogeneous-system baselines of Fig. 7b.
"""

from __future__ import annotations

from typing import Tuple

from .base import MappingContext, OrderedMappingHeuristic, TaskView

__all__ = ["FCFS"]


class FCFS(OrderedMappingHeuristic):
    """Map tasks in arrival order."""

    name = "FCFS"

    def task_priority(self, ctx: MappingContext, task: TaskView) -> Tuple[float, ...]:
        """Earlier arrivals are mapped first."""
        return (float(task.arrival),)
