"""Score-plane execution engine of the two-phase mapping heuristics.

Two-phase heuristics *declare* their scores (:class:`~repro.mapping.base.ScoreSpec`);
this module *executes* the declaration.  Every mapping round reduces to a
lexicographic argmin over a (task x machine) score plane, and two backends
implement it:

* ``loop`` -- the reference per-pair implementation: Python ``min`` over
  score tuples, exactly the historical behaviour of
  ``TwoPhaseMappingHeuristic.map_tasks``.  Legacy subclasses that override
  the imperative ``phase1_score`` / ``phase2_score`` callables always run
  here.
* ``vector`` -- the batched engine: score columns are materialised as NumPy
  matrices (appended-completion columns through the batched kernel in
  :mod:`repro.core.completion`), only the columns of machines whose
  provisional tail moved are refilled between rounds, and selection is a
  vectorised lexicographic argmin whose explicit tie-break columns
  reproduce the loop backend's pick order bit-for-bit.

Both backends evaluate identical per-pair arithmetic (same folds, same
``mean``/``mass_before`` reductions), so they produce *identical*
assignments -- the property pinned by the simulator's equivalence grid
(``tests/sim/test_equivalence.py``).

Columns are pluggable: :func:`register_score_column` adds a named column
that declarative heuristics can reference from their spec; custom ``pair``
columns fall back to per-pair scalar evaluation inside the vector backend
while selection stays vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import (Assignment, MachineState, MappingContext, ScoreSpec,
                   TaskView, TwoPhaseMappingHeuristic)

__all__ = ["ScoreColumn", "SCORE_COLUMNS", "register_score_column",
           "evaluate_columns", "run_two_phase", "run_ordered_plane"]

#: Column kinds understood by the vector backend (see :class:`ScoreColumn`).
COLUMN_KINDS = ("appended_mean", "appended_chance", "task", "static_pair",
                "pair")


@dataclass(frozen=True)
class ScoreColumn:
    """One named column of the (task x machine) score plane.

    Attributes
    ----------
    name:
        Registry name referenced by :class:`~repro.mapping.base.ScoreSpec`.
    scalar:
        Per-pair evaluation ``(ctx, machine, task) -> float``; the loop
        backend uses it exclusively, the vector backend only for ``pair`` /
        ``static_pair`` / ``task`` kinds (``task`` columns are called with
        ``machine=None``).
    kind:
        How the vector backend fills the column:

        * ``appended_mean`` / ``appended_chance`` -- served by the batched
          appended-completion kernel (expected completion time / chance of
          success of the task appended to the machine's provisional tail);
          refilled whenever the tail moves.
        * ``task`` -- a per-task value independent of the machine.
        * ``static_pair`` -- a per-(task, machine) value independent of the
          provisional tail (never refilled).
        * ``pair`` -- a general per-(task, machine) value re-evaluated
          whenever the machine tail moves (scalar fallback for custom
          columns).
    negate:
        For ``appended_chance`` columns: store the *negated* chance so the
        engine's minimisation maximises the chance of success.
    """

    name: str
    scalar: Callable[[MappingContext, Optional[MachineState], TaskView], float]
    kind: str = "pair"
    negate: bool = False


#: Registry of score columns available to declarative heuristics.
SCORE_COLUMNS: Dict[str, ScoreColumn] = {}


def register_score_column(name: str,
                          scalar: Callable[..., float],
                          kind: str = "pair",
                          negate: bool = False) -> ScoreColumn:
    """Register a named score column for use in :class:`ScoreSpec` columns."""
    if kind not in COLUMN_KINDS:
        raise ValueError(f"unknown column kind {kind!r}; expected one of "
                         f"{COLUMN_KINDS}")
    column = ScoreColumn(name=str(name), scalar=scalar, kind=kind,
                         negate=bool(negate))
    SCORE_COLUMNS[column.name] = column
    return column


register_score_column(
    "expected_completion",
    lambda ctx, machine, task: ctx.expected_completion(machine, task),
    kind="appended_mean")
register_score_column(
    "neg_chance_of_success",
    lambda ctx, machine, task: -ctx.chance_of_success(machine, task),
    kind="appended_chance", negate=True)
register_score_column(
    "deadline",
    lambda ctx, machine, task: float(task.deadline),
    kind="task")
register_score_column(
    "mean_execution",
    lambda ctx, machine, task: ctx.mean_execution(task, machine),
    kind="static_pair")
register_score_column(
    "arrival",
    lambda ctx, machine, task: float(task.arrival),
    kind="task")
register_score_column(
    "mean_execution_over_types",
    lambda ctx, machine, task: ctx.mean_execution_over_types(task),
    kind="task")


def _column(name: str) -> ScoreColumn:
    try:
        return SCORE_COLUMNS[name]
    except KeyError:
        known = ", ".join(sorted(SCORE_COLUMNS))
        raise KeyError(f"unknown score column {name!r}; registered columns: "
                       f"{known}") from None


def evaluate_columns(names: Sequence[str], ctx: MappingContext,
                     machine: Optional[MachineState],
                     task: TaskView) -> Tuple[float, ...]:
    """Evaluate named columns for one (task, machine) pair (loop backend)."""
    return tuple(_column(name).scalar(ctx, machine, task) for name in names)


def _tiebreak_scalar(name: str, ctx: MappingContext, machine: MachineState,
                     task: TaskView):
    """Tie-break key component for the loop backend."""
    if name == "machine_id":
        return machine.machine_id
    if name == "task_id":
        return task.task_id
    return _column(name).scalar(ctx, machine, task)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
#: Window sizes below this have no plane width worth vectorising: the
#: vector engine dispatches them to the scalar loop (identical results;
#: NumPy per-round overhead would dominate a narrow "plane").  The default
#: is the *measured* vector-vs-loop crossover: ``repro bench --suite
#: crossover`` times both backends over a sweep of forced window sizes on
#: the current platform, and on the reference machine (min-of-2 timings,
#: widths 1-14) the loop wins clearly up to ~9-task planes, the ratio
#: crosses 1.0 around 10-13 (within run-to-run noise), and the vector
#: engine wins from there up.  Override per run via
#: ``SystemConfig.small_plane_tasks`` /
#: :attr:`MappingContext.small_plane_tasks` when your platform's
#: crossover measures differently.
SMALL_PLANE_TASKS = 10


def run_two_phase(heuristic: TwoPhaseMappingHeuristic,
                  tasks: Sequence[TaskView],
                  machines: Sequence[MachineState],
                  ctx: MappingContext) -> List[Assignment]:
    """Execute a two-phase heuristic on the backend selected by ``ctx``.

    Declarative heuristics run on ``ctx.scoring``; legacy subclasses that
    override the imperative score callables are pinned to the loop backend
    (the vector engine cannot see inside an arbitrary override).  Degenerate
    planes -- windows of fewer than :data:`SMALL_PLANE_TASKS` tasks -- are
    dispatched to the loop backend even under ``"vector"``: both backends
    pick identical assignments, and a one-row plane only pays NumPy
    overhead.
    """
    spec = heuristic.score_spec
    threshold = (ctx.small_plane_tasks if ctx.small_plane_tasks is not None
                 else SMALL_PLANE_TASKS)
    if (spec is not None and ctx.scoring == "vector"
            and len(tasks) >= threshold
            and not _overrides_scores(heuristic)):
        return _map_vector(spec, tasks, machines, ctx)
    return _map_loop(heuristic, tasks, machines, ctx)


def run_ordered_plane(spec: ScoreSpec, tasks: Sequence[TaskView],
                      machines: Sequence[MachineState],
                      ctx: MappingContext) -> List[Assignment]:
    """Execute an ordered heuristic's one-phase spec on the vector engine.

    The spec (built by ``OrderedMappingHeuristic.__init_subclass__``) maps
    the greedy most-urgent-task-first loop onto the two-phase plane: phase 1
    is the machine choice (minimum expected completion, lowest machine id on
    ties) and phase 2 the static priority key with one global winner per
    round -- so the engine commits tasks in exactly the order the reference
    loop's pre-sort would, while the expected-completion column is filled
    through the batched kernel and only refilled for moved machines.
    """
    return _map_vector(spec, tasks, machines, ctx)


def _overrides_scores(heuristic: TwoPhaseMappingHeuristic) -> bool:
    cls = type(heuristic)
    return (cls.phase1_score is not TwoPhaseMappingHeuristic.phase1_score
            or cls.phase2_score is not TwoPhaseMappingHeuristic.phase2_score)


# ----------------------------------------------------------------------
# Loop backend (reference)
# ----------------------------------------------------------------------
def _map_loop(heuristic: TwoPhaseMappingHeuristic,
              tasks: Sequence[TaskView],
              machines: Sequence[MachineState],
              ctx: MappingContext) -> List[Assignment]:
    """Per-pair reference backend: the historical ``map_tasks`` loop."""
    spec = heuristic.score_spec
    tb1 = spec.phase1_tiebreak if spec is not None else ("machine_id",)
    tb2 = spec.phase2_tiebreak if spec is not None else ("task_id",)
    per_machine = heuristic.assign_per_machine

    unmapped: List[TaskView] = list(tasks)
    assignments: List[Assignment] = []

    while unmapped and any(m.has_free_slot for m in machines):
        free_machines = [m for m in machines if m.has_free_slot]
        ctx.plane_rounds += 1
        ctx.plane_evals += len(unmapped) * (len(free_machines) + 1)

        # Phase 1: each task picks its best machine.  The default
        # tie-breaks keep the historical two-element keys (this loop is
        # the timing reference, so it must not pay for generality).
        pairs: List[Tuple[TaskView, MachineState]] = []
        for task in unmapped:
            if tb1 == ("machine_id",):
                key = lambda m: (heuristic.phase1_score(ctx, m, task),
                                 m.machine_id)
            else:
                key = lambda m: (heuristic.phase1_score(ctx, m, task),
                                 *(_tiebreak_scalar(n, ctx, m, task)
                                   for n in tb1))
            pairs.append((task, min(free_machines, key=key)))

        # Phase 2: resolve contention per machine (or globally).
        if tb2 == ("task_id",):
            def p2key(tm: Tuple[TaskView, MachineState]):
                task, machine = tm
                return (heuristic.phase2_score(ctx, machine, task),
                        task.task_id)
        else:
            def p2key(tm: Tuple[TaskView, MachineState]):
                task, machine = tm
                return (heuristic.phase2_score(ctx, machine, task),
                        *(_tiebreak_scalar(n, ctx, machine, task)
                          for n in tb2))

        if per_machine:
            by_machine: Dict[int, List[Tuple[TaskView, MachineState]]] = {}
            for task, machine in pairs:
                by_machine.setdefault(machine.machine_id, []).append((task, machine))
            committed = [min(machine_pairs, key=p2key)
                         for machine_pairs in by_machine.values()]
        else:
            # Single global winner per round (PAM).
            committed = [min(pairs, key=p2key)]

        if not committed:
            break
        for task, machine in committed:
            new_tail = ctx.completion_if_appended(machine, task)
            machine.commit(new_tail)
            unmapped.remove(task)
            assignments.append(Assignment(task.task_id, machine.machine_id))
    return assignments


# ----------------------------------------------------------------------
# Vector backend
# ----------------------------------------------------------------------
def _lex_argmin_rows(cols: Sequence[np.ndarray]) -> np.ndarray:
    """Row-wise lexicographic argmin over stacked key columns.

    ``cols`` are equally-shaped (rows x candidates) matrices compared in
    order; the returned index per row is the *first* candidate attaining
    the lexicographic minimum, which matches Python's first-wins ``min``.
    """
    first = cols[0]
    cand = first == first.min(axis=1, keepdims=True)
    for col in cols[1:]:
        masked = np.where(cand, col, np.inf)
        cand &= masked == masked.min(axis=1, keepdims=True)
    return cand.argmax(axis=1)


def _lex_argmin_1d(cols: Sequence[np.ndarray]) -> int:
    """Lexicographic argmin over parallel 1-D key arrays (first wins)."""
    first = cols[0]
    cand = first == first.min()
    for col in cols[1:]:
        masked = np.where(cand, col, np.inf)
        cand &= masked == masked.min()
    return int(cand.argmax())


def _map_vector(spec: ScoreSpec, tasks: Sequence[TaskView],
                machines: Sequence[MachineState],
                ctx: MappingContext) -> List[Assignment]:
    """Batched backend: materialised score plane + vectorised selection.

    The plane is filled column-by-column through
    :meth:`MappingContext.score_block`; between rounds only the columns of
    machines whose provisional tail moved (their ``version`` bumped) are
    refilled, for the rows still unmapped.  Candidate matrices keep the
    *input order* of tasks and machines, so full ties beyond the declared
    tie-break columns resolve to the first candidate exactly as the loop
    backend's first-wins ``min`` does.
    """
    task_list = list(tasks)
    machine_list = list(machines)
    if not task_list or not machine_list:
        return []
    num_tasks, num_machines = len(task_list), len(machine_list)

    # Only phase-1 columns are materialised as full (task x machine)
    # matrices: phase 1 genuinely needs the whole plane, while phase 2 only
    # reads each task's own target machine -- a thin diagonal the loop
    # backend scores pair-by-pair through the memoised context.  Columns
    # referenced solely by phase 2 are therefore gathered lazily per round
    # (PAM's expected-completion tie chain, for instance, would otherwise
    # cost a full plane of means for one winner per round).
    plane_names: List[str] = []
    for name in spec.phase1 + spec.phase1_tiebreak:
        if name not in ("machine_id", "task_id") and name not in plane_names:
            plane_names.append(name)
    task_names = [
        name for name in dict.fromkeys(
            spec.phase1 + spec.phase2
            + spec.phase1_tiebreak + spec.phase2_tiebreak)
        if name not in ("machine_id", "task_id")
        and _column(name).kind == "task"]
    plane_cols = [_column(name) for name in plane_names]
    need_mean = any(c.kind == "appended_mean" for c in plane_cols)
    need_chance = any(c.kind == "appended_chance" for c in plane_cols)
    appended_cols = [c for c in plane_cols
                     if c.kind in ("appended_mean", "appended_chance")]
    pair_cols = [c for c in plane_cols if c.kind == "pair"]
    static_cols = [c for c in plane_cols if c.kind == "static_pair"]

    task_ids = np.array([t.task_id for t in task_list], dtype=np.int64)
    machine_ids = np.array([m.machine_id for m in machine_list], dtype=np.int64)
    task_vals: Dict[str, np.ndarray] = {
        name: np.array([_column(name).scalar(ctx, None, t)
                        for t in task_list], dtype=np.float64)
        for name in task_names}
    mats: Dict[str, np.ndarray] = {
        c.name: np.empty((num_tasks, num_machines), dtype=np.float64)
        for c in plane_cols if c.kind != "task"}

    def key_matrix(name: str, rows: np.ndarray,
                   cols: np.ndarray) -> np.ndarray:
        """Key column over the (rows x cols) candidate sub-plane."""
        if name == "machine_id":
            return np.broadcast_to(machine_ids[cols].astype(np.float64),
                                   (rows.size, cols.size))
        if name == "task_id":
            return np.broadcast_to(
                task_ids[rows].astype(np.float64)[:, None],
                (rows.size, cols.size))
        column = _column(name)
        if column.kind == "task":
            return np.broadcast_to(task_vals[name][rows][:, None],
                                   (rows.size, cols.size))
        return mats[name][np.ix_(rows, cols)]

    def key_vector(name: str, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Key values of the (rows[i], cols[i]) candidate pairs.

        Served from the materialised plane when the column is a phase-1
        matrix; otherwise gathered lazily through the column's scalar
        (which hits the context's per-(machine, version, task) memos, so
        repeat rounds cost dictionary probes exactly like the loop).
        """
        if name == "machine_id":
            return machine_ids[cols].astype(np.float64)
        if name == "task_id":
            return task_ids[rows].astype(np.float64)
        if name in task_vals:
            return task_vals[name][rows]
        if name in mats:
            return mats[name][rows, cols]
        column = _column(name)
        ctx.plane_evals += rows.size
        return np.array(
            [column.scalar(ctx, machine_list[int(c)], task_list[int(r)])
             for r, c in zip(rows, cols)], dtype=np.float64)

    filled_version: List[Optional[int]] = [None] * num_machines
    alive = np.ones(num_tasks, dtype=bool)
    assignments: List[Assignment] = []

    while True:
        rows = np.nonzero(alive)[0]
        if rows.size == 0:
            break
        free = [j for j in range(num_machines)
                if machine_list[j].has_free_slot]
        if not free:
            break
        ctx.plane_rounds += 1

        # (Re)fill stale phase-1 columns for the rows still in play.
        for j in free:
            machine = machine_list[j]
            if filled_version[j] == machine.version:
                continue
            if filled_version[j] is None:
                # Tail-independent columns are filled once, on the
                # machine's first appearance, and never refilled.
                for c in static_cols:
                    col = mats[c.name]
                    for i in rows:
                        col[i, j] = c.scalar(ctx, machine, task_list[int(i)])
            if appended_cols:
                block = [task_list[int(i)] for i in rows]
                means, chances = ctx.score_block(
                    machine, block, want_mean=need_mean,
                    want_chance=need_chance)
                for c in appended_cols:
                    if c.kind == "appended_mean":
                        mats[c.name][rows, j] = means
                    else:
                        mats[c.name][rows, j] = (-chances if c.negate
                                                 else chances)
            for c in pair_cols:
                col = mats[c.name]
                for i in rows:
                    col[i, j] = c.scalar(ctx, machine, task_list[int(i)])
            filled_version[j] = machine.version

        # Phase 1: per task, lexicographic argmin over the free machines.
        free_arr = np.array(free, dtype=np.int64)
        keys = [key_matrix(name, rows, free_arr)
                for name in spec.phase1 + spec.phase1_tiebreak]
        target = free_arr[_lex_argmin_rows(keys)]

        # Phase 2: resolve contention per machine (or globally).  Key
        # values are evaluated at each task's own target machine.
        committed: List[Tuple[int, int]] = []
        p2names = spec.phase2 + spec.phase2_tiebreak
        keys = [key_vector(name, rows, target) for name in p2names]
        if spec.assign_per_machine:
            # One stable lexsort picks every machine's winner at once:
            # primary key = target machine, then the phase-2 columns, then
            # the tie-breaks; stability resolves full ties to the first
            # task in window order, exactly like the loop's ``min``.
            order_idx = np.lexsort(tuple(reversed(keys)) + (target,))
            tsorted = target[order_idx]
            starts = np.empty(tsorted.size, dtype=bool)
            starts[0] = True
            np.not_equal(tsorted[1:], tsorted[:-1], out=starts[1:])
            win_pos = order_idx[starts]       # one winner per target machine
            # Commit in the order each machine was first targeted (the
            # insertion order of the loop backend's per-machine grouping).
            _, first_idx = np.unique(target, return_index=True)
            win_pos = win_pos[np.argsort(first_idx, kind="stable")]
            committed = [(int(rows[pos]), int(target[pos]))
                         for pos in win_pos]
        else:
            winner = _lex_argmin_1d(keys)
            committed.append((int(rows[winner]), int(target[winner])))

        if not committed:  # pragma: no cover - rows and free are non-empty
            break
        for row, j in committed:
            task = task_list[row]
            machine = machine_list[j]
            new_tail = ctx.completion_if_appended(machine, task)
            machine.commit(new_tail)
            alive[row] = False
            assignments.append(Assignment(task.task_id, machine.machine_id))
    return assignments
