"""MinCompletion-MinCompletion (MinMin / MM) mapping heuristic.

Phase 1 pairs every unmapped task with the machine offering its minimum
expected completion time; phase 2 assigns, to every machine with a free
slot, the provisionally paired task with the minimum expected completion
time.  Rounds repeat until machine queues are full or the batch window is
exhausted (Section V-B-1).

The scores are *declared* (:class:`~repro.mapping.base.ScoreSpec`) and
executed by the scoring backend selected on the
:class:`~repro.mapping.base.MappingContext` (see
:mod:`repro.mapping.kernel`).
"""

from __future__ import annotations

from .base import ScoreSpec, TwoPhaseMappingHeuristic

__all__ = ["MinMin"]


class MinMin(TwoPhaseMappingHeuristic):
    """The MinMin (MM) batch-mode mapping heuristic."""

    name = "MM"
    score_spec = ScoreSpec(
        phase1=("expected_completion",),
        phase2=("expected_completion",),
        assign_per_machine=True,
    )
