"""MinCompletion-MinCompletion (MinMin / MM) mapping heuristic.

Phase 1 pairs every unmapped task with the machine offering its minimum
expected completion time; phase 2 assigns, to every machine with a free
slot, the provisionally paired task with the minimum expected completion
time.  Rounds repeat until machine queues are full or the batch window is
exhausted (Section V-B-1).
"""

from __future__ import annotations

from typing import Tuple

from .base import MachineState, MappingContext, TaskView, TwoPhaseMappingHeuristic

__all__ = ["MinMin"]


class MinMin(TwoPhaseMappingHeuristic):
    """The MinMin (MM) batch-mode mapping heuristic."""

    name = "MM"
    assign_per_machine = True

    def phase1_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> float:
        """Expected completion time of the task on the candidate machine."""
        return ctx.expected_completion(machine, task)

    def phase2_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> Tuple[float, ...]:
        """Minimum expected completion time among the machine's candidates."""
        return (ctx.expected_completion(machine, task),)
