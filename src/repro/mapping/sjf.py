"""Shortest-Job-First (SJF) mapping heuristic.

Tasks with the smallest expected execution time (averaged over machine
types) are mapped first; each goes to the free machine with the minimum
expected completion time.  SJF is one of the homogeneous-system baselines of
Fig. 7b.
"""

from __future__ import annotations

from .base import OrderedMappingHeuristic

__all__ = ["SJF"]


class SJF(OrderedMappingHeuristic):
    """Map the shortest expected tasks first.

    Declared as a one-phase spec (shortest type-averaged execution first,
    arrival order on ties), so the vector scoring backend batches the
    expected-completion plane instead of scoring machine candidates pair by
    pair.
    """

    name = "SJF"
    priority_columns = ("mean_execution_over_types", "arrival")
