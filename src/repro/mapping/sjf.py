"""Shortest-Job-First (SJF) mapping heuristic.

Tasks with the smallest expected execution time (averaged over machine
types) are mapped first; each goes to the free machine with the minimum
expected completion time.  SJF is one of the homogeneous-system baselines of
Fig. 7b.
"""

from __future__ import annotations

from typing import Tuple

from .base import MappingContext, OrderedMappingHeuristic, TaskView

__all__ = ["SJF"]


class SJF(OrderedMappingHeuristic):
    """Map the shortest expected tasks first."""

    name = "SJF"

    def task_priority(self, ctx: MappingContext, task: TaskView) -> Tuple[float, ...]:
        """Shorter expected execution times are mapped first."""
        return (ctx.mean_execution_over_types(task), float(task.arrival))
