"""MinCompletion-Soonest Deadline (MSD) mapping heuristic.

Phase 1 is identical to MinMin (minimum expected completion time per task);
phase 2 assigns, to every machine with a free slot, the provisionally paired
task with the soonest deadline, breaking ties by the minimum expected
completion time (Section V-B-2).
"""

from __future__ import annotations

from typing import Tuple

from .base import MachineState, MappingContext, TaskView, TwoPhaseMappingHeuristic

__all__ = ["MSD"]


class MSD(TwoPhaseMappingHeuristic):
    """The MinCompletion-Soonest-Deadline batch-mode mapping heuristic."""

    name = "MSD"
    assign_per_machine = True

    def phase1_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> float:
        """Expected completion time of the task on the candidate machine."""
        return ctx.expected_completion(machine, task)

    def phase2_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> Tuple[float, ...]:
        """Soonest deadline first, ties broken by expected completion time."""
        return (float(task.deadline), ctx.expected_completion(machine, task))
