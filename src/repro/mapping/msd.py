"""MinCompletion-Soonest Deadline (MSD) mapping heuristic.

Phase 1 is identical to MinMin (minimum expected completion time per task);
phase 2 assigns, to every machine with a free slot, the provisionally paired
task with the soonest deadline, breaking ties by the minimum expected
completion time (Section V-B-2).

The scores are *declared* (:class:`~repro.mapping.base.ScoreSpec`) and
executed by the scoring backend selected on the
:class:`~repro.mapping.base.MappingContext` (see
:mod:`repro.mapping.kernel`).
"""

from __future__ import annotations

from .base import ScoreSpec, TwoPhaseMappingHeuristic

__all__ = ["MSD"]


class MSD(TwoPhaseMappingHeuristic):
    """The MinCompletion-Soonest-Deadline batch-mode mapping heuristic."""

    name = "MSD"
    score_spec = ScoreSpec(
        phase1=("expected_completion",),
        phase2=("deadline", "expected_completion"),
        assign_per_machine=True,
    )
