"""Pruning-Aware Mapping (PAM) heuristic.

PAM (Gentry et al., IPDPS'19) operates on the PET matrix and the chance of
success of tasks.  Phase 1 pairs every unmapped task with the machine that
offers its highest chance of success; phase 2 picks, among all pairs, the one
with the lowest expected completion time and commits only that pair, breaking
ties by the shortest expected execution time (Section V-B-3).

The original PAM also performs threshold-based dropping and deferring; in
this reproduction those are handled by the separate dropping policies (the
paper disables PAM's deferring and replaces its dropping with the mechanisms
under study).
"""

from __future__ import annotations

from typing import Tuple

from .base import MachineState, MappingContext, TaskView, TwoPhaseMappingHeuristic

__all__ = ["PAM"]


class PAM(TwoPhaseMappingHeuristic):
    """The Pruning-Aware Mapping batch-mode heuristic (mapping phases only)."""

    name = "PAM"
    assign_per_machine = False  # one globally best pair per round

    def phase1_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> float:
        """Negated chance of success (phase 1 maximises the chance)."""
        return -ctx.chance_of_success(machine, task)

    def phase2_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> Tuple[float, ...]:
        """Lowest expected completion, ties broken by shortest execution."""
        return (ctx.expected_completion(machine, task),
                ctx.mean_execution(task, machine))
