"""Pruning-Aware Mapping (PAM) heuristic.

PAM (Gentry et al., IPDPS'19) operates on the PET matrix and the chance of
success of tasks.  Phase 1 pairs every unmapped task with the machine that
offers its highest chance of success; phase 2 picks, among all pairs, the one
with the lowest expected completion time and commits only that pair, breaking
ties by the shortest expected execution time (Section V-B-3).

The original PAM also performs threshold-based dropping and deferring; in
this reproduction those are handled by the separate dropping policies (the
paper disables PAM's deferring and replaces its dropping with the mechanisms
under study).

The scores are *declared* (:class:`~repro.mapping.base.ScoreSpec`) and
executed by the scoring backend selected on the
:class:`~repro.mapping.base.MappingContext` (see
:mod:`repro.mapping.kernel`).
"""

from __future__ import annotations

from .base import ScoreSpec, TwoPhaseMappingHeuristic

__all__ = ["PAM"]


class PAM(TwoPhaseMappingHeuristic):
    """The Pruning-Aware Mapping batch-mode heuristic (mapping phases only)."""

    name = "PAM"
    score_spec = ScoreSpec(
        # Phase 1 maximises the chance of success (negated for the argmin).
        phase1=("neg_chance_of_success",),
        # Lowest expected completion, ties broken by shortest execution.
        phase2=("expected_completion", "mean_execution"),
        assign_per_machine=False,  # one globally best pair per round
    )
