"""Shared infrastructure for batch-mode mapping heuristics.

At every mapping event the simulator hands the mapping heuristic:

* a *window* of unmapped tasks from the batch queue (oldest first),
* one mutable :class:`MachineState` per machine, describing the free slots
  of its queue and the completion-time PMF of its current tail, and
* a :class:`MappingContext` giving access to the PET matrix and to cached
  completion-time computations.

The heuristic returns a list of :class:`Assignment` objects.  Two-phase
heuristics (MinMin, MSD, PAM) are expressed on top of the shared
:class:`TwoPhaseMappingHeuristic` skeleton; simpler ordering-based heuristics
(FCFS, SJF, EDF) subclass :class:`OrderedMappingHeuristic`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.completion import ChainFolder, completion_pmf
from ..core.pet import PETMatrix
from ..core.pmf import PMF

__all__ = [
    "TaskView",
    "MachineState",
    "Assignment",
    "MappingContext",
    "MappingHeuristic",
    "TwoPhaseMappingHeuristic",
    "OrderedMappingHeuristic",
]


@dataclass(frozen=True)
class TaskView:
    """Scheduler view of one unmapped task."""

    task_id: int
    type_id: int
    arrival: int
    deadline: int


class MachineState:
    """Mutable, per-mapping-event working copy of a machine queue's state.

    Parameters
    ----------
    machine_id / type_id:
        Identity of the machine and its PET column.
    free_slots:
        Remaining queue slots; decremented as the heuristic assigns tasks.
    tail_pmf:
        Completion-time PMF of the last element of the queue (the running
        task's conditioned PMF if the queue is otherwise empty, or a delta at
        the current time for an idle machine).  Updated after each
        provisional assignment so subsequent evaluations see the new tail.
        May be supplied lazily through ``tail_source``: heuristics only ever
        read the tails of machines they can assign to, and in an
        oversubscribed system most queues are full at most events, so the
        simulator defers the Eq. 1 chain fold until the first access.
    version:
        Monotonically increasing counter bumped on every tail update; used as
        a cache key by :class:`MappingContext`.
    tail_source:
        Zero-argument callable producing the tail PMF on first access when
        ``tail_pmf`` is not given eagerly.
    """

    __slots__ = ("machine_id", "type_id", "free_slots", "version", "_tail",
                 "_tail_source")

    def __init__(self, machine_id: int, type_id: int, free_slots: int,
                 tail_pmf: Optional[PMF] = None, version: int = 0,
                 tail_source: Optional[Callable[[], PMF]] = None):
        if tail_pmf is None and tail_source is None:
            raise ValueError("MachineState needs tail_pmf or tail_source")
        self.machine_id = machine_id
        self.type_id = type_id
        self.free_slots = free_slots
        self.version = version
        self._tail = tail_pmf
        self._tail_source = tail_source

    @property
    def tail_pmf(self) -> PMF:
        """Completion-time PMF of the queue tail (materialised on demand)."""
        if self._tail is None:
            self._tail = self._tail_source()
        return self._tail

    @tail_pmf.setter
    def tail_pmf(self, value: PMF) -> None:
        self._tail = value

    @property
    def tail_materialised(self) -> bool:
        """True once the tail PMF has been computed (or was given eagerly)."""
        return self._tail is not None

    @property
    def has_free_slot(self) -> bool:
        """True when at least one more task can be provisionally assigned."""
        return self.free_slots > 0

    def commit(self, new_tail: PMF) -> None:
        """Record a provisional assignment: consume a slot, move the tail."""
        if self.free_slots <= 0:
            raise RuntimeError(f"machine {self.machine_id} has no free slot")
        self.free_slots -= 1
        self._tail = new_tail
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tail = self._tail if self._tail is not None else "<lazy>"
        return (f"MachineState(machine_id={self.machine_id}, "
                f"type_id={self.type_id}, free_slots={self.free_slots}, "
                f"tail_pmf={tail}, version={self.version})")


@dataclass(frozen=True)
class Assignment:
    """A ``task -> machine`` decision produced by a mapping heuristic."""

    task_id: int
    machine_id: int


class MappingContext:
    """Completion-time calculator shared by all heuristics.

    Completion PMFs appended to a machine tail are memoised per
    ``(machine, tail-version, task)`` triple, because two-phase heuristics
    re-evaluate the same pairs over several rounds of a single mapping event.

    ``shared_cache`` optionally extends the memoisation *across* mapping
    events: the simulator passes a persistent dict, and appends onto a
    machine's unmodified tail (version 0) are keyed by ``(machine, task)``
    and guarded by identity of the tail PMF object.  The simulator's tail
    cache returns the same immutable instance while a queue is unchanged, so
    a hit proves the inputs -- and therefore the result -- are unchanged.

    ``folder`` optionally routes fold arithmetic through the run's batched
    :class:`~repro.core.completion.ChainFolder` (scratch buffers plus an
    identity-keyed fold memo over hash-consed PMFs), so appends that repeat
    across machines of the same type -- or across mapping events -- skip
    NumPy entirely.  Results are bit-identical either way.
    """

    def __init__(self, pet: PETMatrix, now: int, prune_eps: float = 1e-12,
                 shared_cache: Optional[Dict[Tuple[int, int],
                                             Tuple[PMF, PMF]]] = None,
                 folder: Optional[ChainFolder] = None,
                 memoize_scores: bool = False):
        self.pet = pet
        self.now = int(now)
        self.prune_eps = float(prune_eps)
        self._cache: Dict[Tuple[int, int, int], PMF] = {}
        self._shared = shared_cache
        if folder is not None and folder.prune_eps != self.prune_eps:
            folder = None  # a mismatched kernel would change pruning
        self._folder = folder
        # Scalar score memos (``memoize_scores``).  Two-phase heuristics
        # re-score every candidate (task, machine) pair on every commit
        # round even though only the committed machine's tail moved;
        # memoising the derived scalars under the same
        # (machine, version, task) key turns those re-evaluations into
        # dictionary hits.  The cached float is the exact value the
        # recomputation would return, so decisions are unchanged.  The
        # simulator enables this with its other incremental machinery; the
        # naive benchmarking path keeps the recompute-per-round behaviour.
        self._memoize_scores = bool(memoize_scores)
        self._chance: Dict[Tuple[int, int, int], float] = {}
        self._expected: Dict[Tuple[int, int, int], float] = {}

    # ------------------------------------------------------------------
    def exec_pmf(self, task: TaskView, machine: MachineState) -> PMF:
        """Execution-time PMF of ``task`` on ``machine`` (a PET entry)."""
        return self.pet.pmf(task.type_id, machine.type_id)

    def mean_execution(self, task: TaskView, machine: MachineState) -> float:
        """Expected execution time of ``task`` on ``machine``."""
        return self.pet.mean_execution(task.type_id, machine.type_id)

    def mean_execution_over_types(self, task: TaskView) -> float:
        """Expected execution time of the task type averaged over machine types."""
        return self.pet.task_type_mean(task.type_id)

    def completion_if_appended(self, machine: MachineState, task: TaskView) -> PMF:
        """Completion-time PMF of ``task`` appended at the tail of ``machine``."""
        key = (machine.machine_id, machine.version, task.task_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        shared_key = None
        if self._shared is not None and machine.version == 0:
            shared_key = (machine.machine_id, task.task_id)
            hit = self._shared.get(shared_key)
            if hit is not None and hit[0] is machine.tail_pmf:
                self._cache[key] = hit[1]
                return hit[1]
        if self._folder is not None:
            pmf = self._folder.fold(machine.tail_pmf,
                                    self.exec_pmf(task, machine), task.deadline)
        else:
            pmf = completion_pmf(machine.tail_pmf, self.exec_pmf(task, machine),
                                 task.deadline, self.prune_eps)
        self._cache[key] = pmf
        if shared_key is not None:
            self._shared[shared_key] = (machine.tail_pmf, pmf)
        return pmf

    def _scored(self, memo: Dict[Tuple[int, int, int], float],
                machine: MachineState, task: TaskView,
                compute: Callable[[PMF], float]) -> float:
        """Evaluate ``compute`` on the appended completion PMF, memoised.

        Both scalar scores share this gate so their memo keys can never
        drift apart: keyed by (machine, tail version, task), exactly the
        triple :meth:`completion_if_appended` is keyed by.
        """
        if not self._memoize_scores:
            return compute(self.completion_if_appended(machine, task))
        key = (machine.machine_id, machine.version, task.task_id)
        value = memo.get(key)
        if value is None:
            value = compute(self.completion_if_appended(machine, task))
            memo[key] = value
        return value

    def expected_completion(self, machine: MachineState, task: TaskView) -> float:
        """Expected completion time of ``task`` appended to ``machine``."""
        return self._scored(self._expected, machine, task, PMF.mean)

    def chance_of_success(self, machine: MachineState, task: TaskView) -> float:
        """Probability that ``task`` appended to ``machine`` meets its deadline."""
        return self._scored(self._chance, machine, task,
                            lambda pmf: pmf.mass_before(task.deadline))


class MappingHeuristic(abc.ABC):
    """Base class of all mapping heuristics."""

    #: Short name used in experiment reports ("MM", "MSD", "PAM", ...).
    name: str = "base"

    @abc.abstractmethod
    def map_tasks(self, tasks: Sequence[TaskView], machines: Sequence[MachineState],
                  ctx: MappingContext) -> List[Assignment]:
        """Assign tasks from the batch-queue window to free machine-queue slots.

        Implementations mutate the provided :class:`MachineState` working
        copies (via :meth:`MachineState.commit`) so that later decisions in
        the same mapping event account for earlier provisional assignments.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class TwoPhaseMappingHeuristic(MappingHeuristic):
    """Skeleton of the two-phase batch heuristics of Section V-B.

    Phase 1 picks, for every unmapped task, its preferred machine according
    to :meth:`phase1_score` (smaller is better).  Phase 2 resolves the
    contention: among the task-machine pairs targeting each machine (or
    globally, see :attr:`assign_per_machine`), the pair minimising
    :meth:`phase2_score` is committed.  Rounds repeat until the queues are
    full or the window is exhausted.
    """

    #: When True (MinMin/MSD behaviour), phase 2 commits one pair per machine
    #: per round.  When False (PAM behaviour), only the single best pair in
    #: the system is committed per round.
    assign_per_machine: bool = True

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def phase1_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> float:
        """Score used to pick each task's candidate machine (minimised)."""

    @abc.abstractmethod
    def phase2_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> Tuple[float, ...]:
        """Score used to pick among pairs targeting a machine (minimised)."""

    # ------------------------------------------------------------------
    def map_tasks(self, tasks: Sequence[TaskView], machines: Sequence[MachineState],
                  ctx: MappingContext) -> List[Assignment]:
        unmapped: List[TaskView] = list(tasks)
        assignments: List[Assignment] = []

        while unmapped and any(m.has_free_slot for m in machines):
            free_machines = [m for m in machines if m.has_free_slot]

            # Phase 1: each task picks its best machine.
            pairs: List[Tuple[TaskView, MachineState]] = []
            for task in unmapped:
                best_machine = min(
                    free_machines,
                    key=lambda m: (self.phase1_score(ctx, m, task), m.machine_id))
                pairs.append((task, best_machine))

            # Phase 2: resolve contention per machine (or globally).
            committed = self._phase2(pairs, ctx)
            if not committed:
                break
            for task, machine in committed:
                new_tail = ctx.completion_if_appended(machine, task)
                machine.commit(new_tail)
                unmapped.remove(task)
                assignments.append(Assignment(task.task_id, machine.machine_id))
        return assignments

    # ------------------------------------------------------------------
    def _phase2(self, pairs: Sequence[Tuple[TaskView, MachineState]],
                ctx: MappingContext) -> List[Tuple[TaskView, MachineState]]:
        """Pick the pairs to commit this round."""
        if not pairs:
            return []
        if self.assign_per_machine:
            by_machine: Dict[int, List[Tuple[TaskView, MachineState]]] = {}
            for task, machine in pairs:
                by_machine.setdefault(machine.machine_id, []).append((task, machine))
            committed = []
            for machine_pairs in by_machine.values():
                task, machine = min(
                    machine_pairs,
                    key=lambda tm: (self.phase2_score(ctx, tm[1], tm[0]), tm[0].task_id))
                committed.append((task, machine))
            return committed
        # Single global winner per round (PAM).
        task, machine = min(
            pairs, key=lambda tm: (self.phase2_score(ctx, tm[1], tm[0]), tm[0].task_id))
        return [(task, machine)]


class OrderedMappingHeuristic(MappingHeuristic):
    """Skeleton of ordering-based heuristics (FCFS, SJF, EDF).

    Tasks are sorted by :meth:`task_priority` (ascending) and greedily
    assigned, in that order, to the free machine minimising the expected
    completion time.
    """

    @abc.abstractmethod
    def task_priority(self, ctx: MappingContext, task: TaskView) -> Tuple[float, ...]:
        """Ordering key of a task; smaller values are mapped first."""

    def map_tasks(self, tasks: Sequence[TaskView], machines: Sequence[MachineState],
                  ctx: MappingContext) -> List[Assignment]:
        ordered = sorted(tasks, key=lambda t: (self.task_priority(ctx, t), t.task_id))
        assignments: List[Assignment] = []
        for task in ordered:
            free_machines = [m for m in machines if m.has_free_slot]
            if not free_machines:
                break
            machine = min(free_machines,
                          key=lambda m: (ctx.expected_completion(m, task), m.machine_id))
            machine.commit(ctx.completion_if_appended(machine, task))
            assignments.append(Assignment(task.task_id, machine.machine_id))
        return assignments
