"""Shared infrastructure for batch-mode mapping heuristics.

At every mapping event the simulator hands the mapping heuristic:

* a *window* of unmapped tasks from the batch queue (oldest first),
* one mutable :class:`MachineState` per machine, describing the free slots
  of its queue and the completion-time PMF of its current tail, and
* a :class:`MappingContext` giving access to the PET matrix and to cached
  completion-time computations.

The heuristic returns a list of :class:`Assignment` objects.  Two-phase
heuristics (MinMin, MSD, PAM) *declare* their scores as a :class:`ScoreSpec`
-- named score columns plus explicit tie-break columns -- on top of the
shared :class:`TwoPhaseMappingHeuristic` skeleton; the declared plane is
executed by one of the scoring backends in :mod:`repro.mapping.kernel`
(the reference per-pair ``loop`` or the batched NumPy ``vector`` backend,
selected by :attr:`MappingContext.scoring`).  Simpler ordering-based
heuristics (FCFS, SJF, EDF) subclass :class:`OrderedMappingHeuristic`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, ClassVar, Dict, List, Optional,
                    Sequence, Tuple)

import numpy as np

from ..core.completion import (ChainFolder, batched_append_scores,
                               completion_pmf)
from ..core.pet import PETMatrix
from ..core.pmf import PMF

if TYPE_CHECKING:  # pragma: no cover - typing-only import (avoids a cycle)
    from ..platform.topology import EffectiveExecution

__all__ = [
    "TaskView",
    "MachineState",
    "Assignment",
    "ScoreSpec",
    "MappingContext",
    "MappingHeuristic",
    "TwoPhaseMappingHeuristic",
    "OrderedMappingHeuristic",
]

#: Scoring backends accepted by :class:`MappingContext` and
#: :class:`~repro.sim.system.SystemConfig`.
SCORING_BACKENDS = ("loop", "vector")


@dataclass(frozen=True)
class ScoreSpec:
    """Declarative description of a two-phase heuristic's score plane.

    Instead of overriding imperative per-pair score callables, a two-phase
    heuristic names the *columns* of its (task x machine) score plane; a
    scoring backend (:mod:`repro.mapping.kernel`) evaluates the plane and
    performs the lexicographic argmin.  Column names resolve against
    :data:`repro.mapping.kernel.SCORE_COLUMNS` (extensible via
    :func:`repro.mapping.kernel.register_score_column`).

    Attributes
    ----------
    phase1:
        Columns minimised (lexicographically) when each task picks its
        candidate machine.
    phase2:
        Columns minimised when resolving contention among the pairs
        targeting one machine (or globally, see ``assign_per_machine``).
    phase1_tiebreak / phase2_tiebreak:
        Explicit final tie-break columns.  The defaults reproduce the
        historical loop order exactly: phase 1 breaks ties by the lowest
        machine id, phase 2 by the lowest task id.
    assign_per_machine:
        When True (MinMin/MSD) phase 2 commits one pair per machine per
        round; when False (PAM) only the single best pair in the system.
    """

    phase1: Tuple[str, ...]
    phase2: Tuple[str, ...]
    phase1_tiebreak: Tuple[str, ...] = ("machine_id",)
    phase2_tiebreak: Tuple[str, ...] = ("task_id",)
    assign_per_machine: bool = True

    def __post_init__(self):
        if not self.phase1 or not self.phase2:
            raise ValueError("ScoreSpec needs at least one column per phase")

    @property
    def columns(self) -> Tuple[str, ...]:
        """Every distinct plane column the spec references (no tie-breaks)."""
        seen: List[str] = []
        for name in self.phase1 + self.phase2:
            if name not in seen:
                seen.append(name)
        return tuple(seen)


@dataclass(frozen=True)
class TaskView:
    """Scheduler view of one unmapped task."""

    task_id: int
    type_id: int
    arrival: int
    deadline: int


class MachineState:
    """Mutable, per-mapping-event working copy of a machine queue's state.

    Parameters
    ----------
    machine_id / type_id:
        Identity of the machine and its PET column.
    free_slots:
        Remaining queue slots; decremented as the heuristic assigns tasks.
    tail_pmf:
        Completion-time PMF of the last element of the queue (the running
        task's conditioned PMF if the queue is otherwise empty, or a delta at
        the current time for an idle machine).  Updated after each
        provisional assignment so subsequent evaluations see the new tail.
        May be supplied lazily through ``tail_source``: heuristics only ever
        read the tails of machines they can assign to, and in an
        oversubscribed system most queues are full at most events, so the
        simulator defers the Eq. 1 chain fold until the first access.
    version:
        Monotonically increasing counter bumped on every tail update; used as
        a cache key by :class:`MappingContext`.
    tail_source:
        Zero-argument callable producing the tail PMF on first access when
        ``tail_pmf`` is not given eagerly.
    """

    __slots__ = ("machine_id", "type_id", "free_slots", "version", "_tail",
                 "_tail_source")

    def __init__(self, machine_id: int, type_id: int, free_slots: int,
                 tail_pmf: Optional[PMF] = None, version: int = 0,
                 tail_source: Optional[Callable[[], PMF]] = None):
        if tail_pmf is None and tail_source is None:
            raise ValueError("MachineState needs tail_pmf or tail_source")
        self.machine_id = machine_id
        self.type_id = type_id
        self.free_slots = free_slots
        self.version = version
        self._tail = tail_pmf
        self._tail_source = tail_source

    @property
    def tail_pmf(self) -> PMF:
        """Completion-time PMF of the queue tail (materialised on demand)."""
        if self._tail is None:
            self._tail = self._tail_source()
        return self._tail

    @tail_pmf.setter
    def tail_pmf(self, value: PMF) -> None:
        self._tail = value

    @property
    def tail_materialised(self) -> bool:
        """True once the tail PMF has been computed (or was given eagerly)."""
        return self._tail is not None

    @property
    def has_free_slot(self) -> bool:
        """True when at least one more task can be provisionally assigned."""
        return self.free_slots > 0

    def commit(self, new_tail: PMF) -> None:
        """Record a provisional assignment: consume a slot, move the tail."""
        if self.free_slots <= 0:
            raise RuntimeError(f"machine {self.machine_id} has no free slot")
        self.free_slots -= 1
        self._tail = new_tail
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tail = self._tail if self._tail is not None else "<lazy>"
        return (f"MachineState(machine_id={self.machine_id}, "
                f"type_id={self.type_id}, free_slots={self.free_slots}, "
                f"tail_pmf={tail}, version={self.version})")


@dataclass(frozen=True)
class Assignment:
    """A ``task -> machine`` decision produced by a mapping heuristic."""

    task_id: int
    machine_id: int


class MappingContext:
    """Completion-time calculator shared by all heuristics.

    Completion PMFs appended to a machine tail are memoised per
    ``(machine, tail-version, task)`` triple, because two-phase heuristics
    re-evaluate the same pairs over several rounds of a single mapping event.

    ``shared_cache`` optionally extends the memoisation *across* mapping
    events: the simulator passes a persistent dict, and appends onto a
    machine's unmodified tail (version 0) are keyed by ``(machine, task)``
    and guarded by identity of the tail PMF object.  The simulator's tail
    cache returns the same immutable instance while a queue is unchanged, so
    a hit proves the inputs -- and therefore the result -- are unchanged.

    ``folder`` optionally routes fold arithmetic through the run's batched
    :class:`~repro.core.completion.ChainFolder` (scratch buffers plus an
    identity-keyed fold memo over hash-consed PMFs), so appends that repeat
    across machines of the same type -- or across mapping events -- skip
    NumPy entirely.  Results are bit-identical either way -- unless the
    folder runs the ``numerics="fast"`` profile, in which case *scores*
    (and only scores) are served by its closed-form / batched-FFT backends
    within the documented tolerance, while committed completion PMFs stay
    exact.

    ``small_plane_tasks`` overrides the vector backend's small-plane
    dispatch threshold (``None`` keeps the measured platform default,
    :data:`repro.mapping.kernel.SMALL_PLANE_TASKS`).
    """

    def __init__(self, pet: PETMatrix, now: int, prune_eps: float = 1e-12,
                 shared_cache: Optional[Dict[Tuple[int, int],
                                             Tuple[PMF, PMF]]] = None,
                 folder: Optional[ChainFolder] = None,
                 memoize_scores: bool = False,
                 scoring: str = "vector",
                 small_plane_tasks: Optional[int] = None,
                 exec_view: Optional["EffectiveExecution"] = None):
        self.pet = pet
        #: Optional transfer-composed execution views
        #: (:class:`repro.platform.topology.EffectiveExecution`).  When set,
        #: :meth:`exec_pmf` and :meth:`mean_execution` serve the effective
        #: (transfer-shifted) per-machine entries, so every heuristic --
        #: loop or vector backend, exact or fast numerics -- prices data
        #: locality automatically.  ``None`` keeps the raw PET behaviour.
        self._exec_view = exec_view
        self.now = int(now)
        self.prune_eps = float(prune_eps)
        #: Vector-dispatch threshold override (``None`` = kernel default).
        self.small_plane_tasks = (None if small_plane_tasks is None
                                  else int(small_plane_tasks))
        self._cache: Dict[Tuple[int, int, int], PMF] = {}
        self._shared = shared_cache
        if folder is not None and folder.prune_eps != self.prune_eps:
            folder = None  # a mismatched kernel would change pruning
        self._folder = folder
        if scoring not in SCORING_BACKENDS:
            raise ValueError(f"unknown scoring backend {scoring!r}; "
                             f"expected one of {SCORING_BACKENDS}")
        #: Backend declarative heuristics run their score plane on.
        self.scoring = scoring
        #: Work counters of the scoring backends: per-pair score
        #: evaluations and selection rounds of this mapping event.  The
        #: simulator folds them into :class:`~repro.sim.perf.PerfStats`
        #: (``plane_evals`` / ``plane_rounds``) after the event.
        self.plane_evals = 0
        self.plane_rounds = 0
        # Scalar score memos (``memoize_scores``).  Two-phase heuristics
        # re-score every candidate (task, machine) pair on every commit
        # round even though only the committed machine's tail moved;
        # memoising the derived scalars under the same
        # (machine, version, task) key turns those re-evaluations into
        # dictionary hits.  The cached float is the exact value the
        # recomputation would return, so decisions are unchanged.  The
        # simulator enables this with its other incremental machinery; the
        # naive benchmarking path keeps the recompute-per-round behaviour.
        self._memoize_scores = bool(memoize_scores)
        self._chance: Dict[Tuple[int, int, int], float] = {}
        self._expected: Dict[Tuple[int, int, int], float] = {}
        #: True when score queries run the folder's fast-numerics backends.
        self._fast = folder is not None and folder.numerics == "fast"

    # ------------------------------------------------------------------
    def exec_pmf(self, task: TaskView, machine: MachineState) -> PMF:
        """Execution-time PMF of ``task`` on ``machine``.

        A raw PET entry, or the transfer-composed effective entry when the
        run has a non-trivial topology; both are interned, identity-stable
        instances, so every downstream memo keys on them unchanged.
        """
        if self._exec_view is not None:
            return self._exec_view.pmf(task.type_id, machine.machine_id)
        return self.pet.pmf(task.type_id, machine.type_id)

    def mean_execution(self, task: TaskView, machine: MachineState) -> float:
        """Expected execution time of ``task`` on ``machine``
        (transfer-inclusive when the run has a non-trivial topology)."""
        if self._exec_view is not None:
            return self._exec_view.mean(task.type_id, machine.machine_id)
        return self.pet.mean_execution(task.type_id, machine.type_id)

    def mean_execution_over_types(self, task: TaskView) -> float:
        """Expected execution time of the task type averaged over machine types."""
        return self.pet.task_type_mean(task.type_id)

    def completion_if_appended(self, machine: MachineState, task: TaskView) -> PMF:
        """Completion-time PMF of ``task`` appended at the tail of ``machine``."""
        key = (machine.machine_id, machine.version, task.task_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        shared_key = None
        if self._shared is not None and machine.version == 0:
            shared_key = (machine.machine_id, task.task_id)
            hit = self._shared.get(shared_key)
            if hit is not None and hit[0] is machine.tail_pmf:
                self._cache[key] = hit[1]
                return hit[1]
        if self._folder is not None:
            pmf = self._folder.fold(machine.tail_pmf,
                                    self.exec_pmf(task, machine), task.deadline)
        else:
            pmf = completion_pmf(machine.tail_pmf, self.exec_pmf(task, machine),
                                 task.deadline, self.prune_eps)
        self._cache[key] = pmf
        if shared_key is not None:
            self._shared[shared_key] = (machine.tail_pmf, pmf)
        return pmf

    def _scored(self, memo: Dict[Tuple[int, int, int], float],
                machine: MachineState, task: TaskView,
                compute: Callable[[PMF], float]) -> float:
        """Evaluate ``compute`` on the appended completion PMF, memoised.

        Both scalar scores share this gate so their memo keys can never
        drift apart: keyed by (machine, tail version, task), exactly the
        triple :meth:`completion_if_appended` is keyed by.
        """
        if not self._memoize_scores:
            return compute(self.completion_if_appended(machine, task))
        key = (machine.machine_id, machine.version, task.task_id)
        value = memo.get(key)
        if value is None:
            value = compute(self.completion_if_appended(machine, task))
            memo[key] = value
        return value

    def expected_completion(self, machine: MachineState, task: TaskView) -> float:
        """Expected completion time of ``task`` appended to ``machine``.

        Under the ``fast`` numerics profile the value is the folder's
        closed-form moment algebra (no fold, no appended PMF), mirroring
        :meth:`chance_of_success`.
        """
        folder = self._folder
        if self._fast:
            if not self._memoize_scores:
                return folder.append_mean(machine.tail_pmf,
                                          self.exec_pmf(task, machine),
                                          task.deadline)
            key = (machine.machine_id, machine.version, task.task_id)
            value = self._expected.get(key)
            if value is None:
                value = folder.append_mean(machine.tail_pmf,
                                           self.exec_pmf(task, machine),
                                           task.deadline)
                self._expected[key] = value
            return value
        return self._scored(self._expected, machine, task,
                            folder.mean if folder is not None else PMF.mean)

    def chance_of_success(self, machine: MachineState, task: TaskView) -> float:
        """Probability that ``task`` appended to ``machine`` meets its deadline.

        Under the ``fast`` numerics profile the value is the folder's
        closed-form dot product (no fold, no appended PMF) -- this is how
        the *loop* backend benefits from the fast profile too.
        """
        folder = self._folder
        if self._fast:
            if not self._memoize_scores:
                return folder.append_chance(machine.tail_pmf,
                                            self.exec_pmf(task, machine),
                                            task.deadline)
            key = (machine.machine_id, machine.version, task.task_id)
            value = self._chance.get(key)
            if value is None:
                value = folder.append_chance(machine.tail_pmf,
                                             self.exec_pmf(task, machine),
                                             task.deadline)
                self._chance[key] = value
            return value
        if folder is not None:
            compute = lambda pmf: folder.chance(pmf, task.deadline)
        else:
            compute = lambda pmf: pmf.mass_before(task.deadline)
        return self._scored(self._chance, machine, task, compute)

    # ------------------------------------------------------------------
    def score_block(self, machine: MachineState, tasks: Sequence[TaskView],
                    want_mean: bool = True, want_chance: bool = False,
                    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Appended-completion scores of many tasks on one machine, batched.

        Evaluates one *column* of the (task x machine) score plane: every
        candidate appended to the machine's current tail, scored through the
        batched kernel (:func:`repro.core.completion.batched_append_scores`)
        instead of one scalar call per pair.  Every value is bit-identical
        to what :meth:`expected_completion` / :meth:`chance_of_success`
        return for the same pair, and the appended PMFs are recorded in the
        same caches, so a later :meth:`completion_if_appended` (the commit
        path) is a dictionary hit.

        Under the ``fast`` numerics profile the misses are served by the
        folder's closed-form / batched-FFT backends instead, and the
        resulting score-only PMFs (tolerance-bounded, or not materialised
        at all for chance-only columns) are *not* recorded in the appended
        caches: the commit path re-folds its one chosen pair exactly, so
        the simulated trajectory keeps exact arithmetic.

        Returns ``(means, chances)`` aligned with ``tasks``; entries not
        requested are ``None``.
        """
        n = len(tasks)
        self.plane_evals += n
        mid = machine.machine_id
        version = machine.version
        means = np.empty(n, dtype=np.float64) if want_mean else None
        chances = np.empty(n, dtype=np.float64) if want_chance else None
        pmfs: List[Optional[PMF]] = [None] * n
        miss: List[int] = []
        if version == 0:
            # An unmodified tail may already carry appends: from this event
            # (the per-event cache) or from earlier events (the shared
            # append cache, guarded by tail identity).
            tail = machine.tail_pmf
            for i, task in enumerate(tasks):
                key = (mid, 0, task.task_id)
                pmf = self._cache.get(key)
                if pmf is None and self._shared is not None:
                    hit = self._shared.get((mid, task.task_id))
                    if hit is not None and hit[0] is tail:
                        pmf = hit[1]
                        self._cache[key] = pmf
                if pmf is None:
                    miss.append(i)
                else:
                    pmfs[i] = pmf
        else:
            # A bumped version means the tail just moved: nothing can be
            # cached under the new key yet, so skip the probes entirely.
            miss = list(range(n))
        if miss:
            tail = machine.tail_pmf
            exec_pmfs = [self.exec_pmf(tasks[i], machine) for i in miss]
            deadlines = [tasks[i].deadline for i in miss]
            folded, f_means, f_chances = batched_append_scores(
                tail, exec_pmfs, deadlines, self.prune_eps, self._folder,
                want_mean=want_mean, want_chance=want_chance)
            record = not self._fast
            share = (self._shared is not None and version == 0) and record
            memoize = self._fast and self._memoize_scores
            for j, i in enumerate(miss):
                pmf = folded[j]
                pmfs[i] = pmf
                if record and pmf is not None:
                    self._cache[(mid, version, tasks[i].task_id)] = pmf
                    if share:
                        self._shared[(mid, tasks[i].task_id)] = (tail, pmf)
                if means is not None:
                    means[i] = f_means[j]
                    if memoize:
                        # Fast scores feed the scalar memos instead of the
                        # appended-PMF caches, so phase-2 re-queries of the
                        # same pair are dictionary hits rather than exact
                        # re-folds.
                        self._expected[(mid, version, tasks[i].task_id)] = \
                            f_means[j]
                if chances is not None:
                    chances[i] = f_chances[j]
                    if memoize:
                        self._chance[(mid, version, tasks[i].task_id)] = \
                            f_chances[j]
        if len(miss) != n:
            # Score the cache hits with the exact arithmetic of the scalar
            # path (PMF.mean / mass_before, folder-memoised chance).
            folder = self._folder
            missing = set(miss)
            for i, pmf in enumerate(pmfs):
                if i in missing:
                    continue
                if means is not None:
                    means[i] = (folder.mean(pmf) if folder is not None
                                else pmf.mean())
                if chances is not None:
                    deadline = int(tasks[i].deadline)
                    chances[i] = (folder.chance(pmf, deadline)
                                  if folder is not None
                                  else pmf.mass_before(deadline))
        return means, chances


class MappingHeuristic(abc.ABC):
    """Base class of all mapping heuristics."""

    #: Short name used in experiment reports ("MM", "MSD", "PAM", ...).
    name: str = "base"

    @abc.abstractmethod
    def map_tasks(self, tasks: Sequence[TaskView], machines: Sequence[MachineState],
                  ctx: MappingContext) -> List[Assignment]:
        """Assign tasks from the batch-queue window to free machine-queue slots.

        Implementations mutate the provided :class:`MachineState` working
        copies (via :meth:`MachineState.commit`) so that later decisions in
        the same mapping event account for earlier provisional assignments.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class TwoPhaseMappingHeuristic(MappingHeuristic):
    """Skeleton of the two-phase batch heuristics of Section V-B.

    Phase 1 picks, for every unmapped task, its preferred machine (smaller
    score is better).  Phase 2 resolves the contention: among the
    task-machine pairs targeting each machine (or globally, see
    :attr:`assign_per_machine`), the best pair is committed.  Rounds repeat
    until the queues are full or the window is exhausted.

    Subclasses *declare* their scores as a :class:`ScoreSpec`
    (:attr:`score_spec`); the plane is then executed by the scoring backend
    selected through :attr:`MappingContext.scoring` -- the per-pair
    ``loop`` reference or the batched NumPy ``vector`` engine
    (:mod:`repro.mapping.kernel`), which produce identical assignments.
    Legacy subclasses that instead override the imperative
    :meth:`phase1_score` / :meth:`phase2_score` callables keep working and
    are always executed on the loop backend.
    """

    #: Declarative description of the heuristic's score plane.  ``None``
    #: only for legacy subclasses that override the score callables.
    score_spec: ClassVar[Optional[ScoreSpec]] = None

    #: When True (MinMin/MSD behaviour), phase 2 commits one pair per machine
    #: per round.  When False (PAM behaviour), only the single best pair in
    #: the system is committed per round.  Kept in sync with
    #: :attr:`score_spec` automatically for declarative subclasses.
    assign_per_machine: bool = True

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        spec = cls.__dict__.get("score_spec")
        if spec is not None:
            cls.assign_per_machine = spec.assign_per_machine

    # ------------------------------------------------------------------
    def _spec(self) -> ScoreSpec:
        spec = self.score_spec
        if spec is None:
            raise TypeError(
                f"{type(self).__name__} declares no score_spec; either set "
                "one or override phase1_score/phase2_score")
        return spec

    def phase1_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> float:
        """Score used to pick each task's candidate machine (minimised).

        The default evaluates the declared :attr:`score_spec` phase-1
        columns; a single column yields a bare float, several a tuple.
        """
        from .kernel import evaluate_columns  # lazy: avoids an import cycle

        values = evaluate_columns(self._spec().phase1, ctx, machine, task)
        return values[0] if len(values) == 1 else values

    def phase2_score(self, ctx: MappingContext, machine: MachineState,
                     task: TaskView) -> Tuple[float, ...]:
        """Score used to pick among pairs targeting a machine (minimised)."""
        from .kernel import evaluate_columns

        return evaluate_columns(self._spec().phase2, ctx, machine, task)

    # ------------------------------------------------------------------
    def map_tasks(self, tasks: Sequence[TaskView], machines: Sequence[MachineState],
                  ctx: MappingContext) -> List[Assignment]:
        from .kernel import run_two_phase

        return run_two_phase(self, tasks, machines, ctx)


class OrderedMappingHeuristic(MappingHeuristic):
    """Skeleton of ordering-based heuristics (FCFS, SJF, EDF).

    Tasks are sorted by :meth:`task_priority` (ascending) and greedily
    assigned, in that order, to the free machine minimising the expected
    completion time.

    Like the two-phase heuristics, ordered heuristics *declare* their
    ordering: :attr:`priority_columns` names the task-kind score columns of
    the priority key (most significant first), from which a one-phase
    :class:`ScoreSpec` is derived -- phase 1 minimises
    ``expected_completion`` (each task's machine choice), phase 2 the
    priority columns with a single global winner per round, which is
    exactly the greedy take-the-most-urgent-task-next loop.  Under
    ``scoring="vector"`` the declared plane runs on the batched engine of
    :mod:`repro.mapping.kernel` (identical assignments bit-for-bit, pinned
    alongside the two-phase heuristics in the equivalence grid); the loop
    backend -- and any legacy subclass that overrides
    :meth:`task_priority` -- keeps the historical greedy reference.
    """

    #: Task-kind score-column names of the priority key, most significant
    #: first (see :data:`repro.mapping.kernel.SCORE_COLUMNS`).  ``None``
    #: only for legacy subclasses that override :meth:`task_priority`.
    priority_columns: ClassVar[Optional[Tuple[str, ...]]] = None

    #: One-phase spec derived from :attr:`priority_columns` (``None`` for
    #: legacy subclasses); consumed by the vector dispatch below.
    score_spec: ClassVar[Optional[ScoreSpec]] = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        columns = cls.__dict__.get("priority_columns")
        if columns:
            cls.score_spec = ScoreSpec(
                phase1=("expected_completion",),
                phase2=tuple(columns),
                assign_per_machine=False)

    def __init__(self):
        # task_priority used to be @abstractmethod, failing broken
        # subclasses at instantiation; keep that contract for classes that
        # declare neither priority_columns nor an override instead of
        # surfacing a TypeError at the first mapping event of a run.
        if self.score_spec is None and not self._overrides_priority():
            raise TypeError(
                f"{type(self).__name__} must declare priority_columns or "
                "override task_priority")

    def task_priority(self, ctx: MappingContext, task: TaskView) -> Tuple[float, ...]:
        """Ordering key of a task; smaller values are mapped first.

        The default evaluates the declared :attr:`priority_columns`;
        legacy subclasses may override it instead (and are then always
        executed on the greedy reference loop).
        """
        columns = self.priority_columns
        if columns is None:
            raise TypeError(
                f"{type(self).__name__} declares no priority_columns; "
                "either set them or override task_priority")
        from .kernel import evaluate_columns  # lazy: avoids an import cycle

        return evaluate_columns(columns, ctx, None, task)

    def _overrides_priority(self) -> bool:
        return (type(self).task_priority
                is not OrderedMappingHeuristic.task_priority)

    def map_tasks(self, tasks: Sequence[TaskView], machines: Sequence[MachineState],
                  ctx: MappingContext) -> List[Assignment]:
        from .kernel import SMALL_PLANE_TASKS, run_ordered_plane

        spec = self.score_spec
        threshold = (ctx.small_plane_tasks if ctx.small_plane_tasks is not None
                     else SMALL_PLANE_TASKS)
        if (spec is not None and ctx.scoring == "vector"
                and len(tasks) >= threshold
                and not self._overrides_priority()):
            return run_ordered_plane(spec, tasks, machines, ctx)
        ordered = sorted(tasks, key=lambda t: (self.task_priority(ctx, t), t.task_id))
        assignments: List[Assignment] = []
        for task in ordered:
            free_machines = [m for m in machines if m.has_free_slot]
            if not free_machines:
                break
            machine = min(free_machines,
                          key=lambda m: (ctx.expected_completion(m, task), m.machine_id))
            machine.commit(ctx.completion_if_appended(machine, task))
            assignments.append(Assignment(task.task_id, machine.machine_id))
        return assignments
