"""Deadline assignment.

The paper assigns every task an individually feasible hard deadline

    δ_i = arr_i + avg_i + γ · avg_all

where ``arr_i`` is the arrival time, ``avg_i`` is the mean execution time of
the task's type (over machine types), ``avg_all`` is the mean execution time
over all task and machine types, and ``γ`` is a slack coefficient controlling
how tight deadlines are.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pet import PETMatrix

__all__ = ["DeadlinePolicy", "PaperDeadlinePolicy"]


class DeadlinePolicy:
    """Interface of deadline-assignment policies."""

    def deadline(self, arrival: int, task_type: int, pet: PETMatrix) -> int:
        """Absolute deadline of a task of ``task_type`` arriving at ``arrival``."""
        raise NotImplementedError  # pragma: no cover - interface


@dataclass(frozen=True)
class PaperDeadlinePolicy(DeadlinePolicy):
    """The paper's deadline formula ``δ = arr + avg_i + γ·avg_all``.

    Attributes
    ----------
    gamma:
        Task slack coefficient ``γ``; larger values produce looser deadlines.
    """

    gamma: float = 1.0

    def __post_init__(self):
        if self.gamma < 0:
            raise ValueError("gamma cannot be negative")

    def deadline(self, arrival: int, task_type: int, pet: PETMatrix) -> int:
        """Deadline per the paper formula, rounded to an integer time unit."""
        avg_i = pet.task_type_mean(task_type)
        avg_all = pet.overall_mean()
        deadline = arrival + avg_i + self.gamma * avg_all
        # Deadlines must lie strictly after the arrival so every task is
        # individually feasible with at least one time unit of slack.
        return max(int(round(deadline)), int(arrival) + 1)
