"""Workload generation: platforms, PET matrices, arrivals, deadlines, scenarios."""

from .arrivals import (ArrivalProcess, PoissonArrivals, UniformArrivals,
                       rate_for_oversubscription, system_capacity)
from .deadlines import DeadlinePolicy, PaperDeadlinePolicy
from .homogeneous import HomogeneousWorkloadFactory
from .pet_builder import GammaPETBuilder, build_pet_from_means
from .platforms import Platform
from .scenario import (OVERSUBSCRIPTION_LEVELS, PAPER_TASK_COUNTS, Scenario,
                       ScenarioSpec, build_scenario, homogeneous_scenario,
                       spec_scenario, transcoding_scenario)
from .spec import (SPEC_MACHINE_NAMES, SPEC_MACHINE_PRICES, SPEC_TASK_TYPE_NAMES,
                   SpecWorkloadFactory, spec_mean_matrix)
from .transcoding import (TRANSCODING_MACHINE_NAMES, TRANSCODING_MACHINE_PRICES,
                          TRANSCODING_TASK_TYPE_NAMES, TranscodingWorkloadFactory,
                          transcoding_mean_matrix)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "system_capacity",
    "rate_for_oversubscription",
    "DeadlinePolicy",
    "PaperDeadlinePolicy",
    "GammaPETBuilder",
    "build_pet_from_means",
    "Platform",
    "Scenario",
    "ScenarioSpec",
    "OVERSUBSCRIPTION_LEVELS",
    "PAPER_TASK_COUNTS",
    "build_scenario",
    "spec_scenario",
    "homogeneous_scenario",
    "transcoding_scenario",
    "SpecWorkloadFactory",
    "spec_mean_matrix",
    "SPEC_MACHINE_NAMES",
    "SPEC_MACHINE_PRICES",
    "SPEC_TASK_TYPE_NAMES",
    "HomogeneousWorkloadFactory",
    "TranscodingWorkloadFactory",
    "transcoding_mean_matrix",
    "TRANSCODING_MACHINE_NAMES",
    "TRANSCODING_MACHINE_PRICES",
    "TRANSCODING_TASK_TYPE_NAMES",
]
