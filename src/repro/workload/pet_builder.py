"""Construction of PET matrices from Gamma-distributed execution-time samples.

The paper's experimental setup (Section V-A) builds the PET matrix as
follows: for every (task type, machine type) pair the execution time is
assumed to follow a unimodal Gamma distribution whose mean comes from
benchmark measurements; the scale parameter is drawn uniformly from
``[1, 20]``; 500 execution times are sampled from the Gamma distribution and
a histogram of those samples becomes the execution-time PMF.  This module
reproduces that pipeline from a matrix of mean execution times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.pet import PETMatrix
from ..core.pmf import PMF

__all__ = ["GammaPETBuilder", "build_pet_from_means"]


@dataclass(frozen=True)
class GammaPETBuilder:
    """Configuration of the Gamma-sampling PET construction.

    Attributes
    ----------
    samples_per_pair:
        Number of Gamma samples drawn per (task type, machine type) pair
        (paper: 500).
    scale_range:
        Uniform range the Gamma scale parameter is drawn from (paper: [1, 20]).
        The shape parameter is then ``mean / scale``.
    max_impulses:
        Maximum number of histogram bins (impulses) per PMF.
    min_execution:
        Lower clip applied to sampled execution times (time units).
    """

    samples_per_pair: int = 500
    scale_range: Tuple[float, float] = (1.0, 20.0)
    max_impulses: int = 24
    min_execution: int = 1

    def __post_init__(self):
        if self.samples_per_pair < 2:
            raise ValueError("need at least two samples per pair")
        lo, hi = self.scale_range
        if not 0 < lo <= hi:
            raise ValueError("scale range must satisfy 0 < lo <= hi")
        if self.max_impulses < 2:
            raise ValueError("need at least two impulses per PMF")
        if self.min_execution < 1:
            raise ValueError("minimum execution time must be at least 1")

    # ------------------------------------------------------------------
    def sample_pair(self, mean: float, rng: np.random.Generator) -> PMF:
        """Sample one execution-time PMF for a pair with the given mean."""
        if mean <= 0:
            raise ValueError("mean execution time must be positive")
        lo, hi = self.scale_range
        scale = rng.uniform(lo, hi)
        shape = max(mean / scale, 1e-3)
        samples = rng.gamma(shape, scale, size=self.samples_per_pair)
        return PMF.from_samples(samples, max_impulses=self.max_impulses,
                                min_value=self.min_execution)

    def build(self, mean_matrix: np.ndarray, task_type_names: Sequence[str],
              machine_type_names: Sequence[str],
              rng: Optional[np.random.Generator] = None) -> PETMatrix:
        """Build a full PET matrix from a (task × machine) mean matrix."""
        rng = rng if rng is not None else np.random.default_rng()
        mean_matrix = np.asarray(mean_matrix, dtype=np.float64)
        if mean_matrix.shape != (len(task_type_names), len(machine_type_names)):
            raise ValueError(
                f"mean matrix shape {mean_matrix.shape} does not match "
                f"({len(task_type_names)}, {len(machine_type_names)})")
        if np.any(mean_matrix <= 0):
            raise ValueError("all mean execution times must be positive")
        entries = {}
        for i in range(mean_matrix.shape[0]):
            for j in range(mean_matrix.shape[1]):
                entries[(i, j)] = self.sample_pair(float(mean_matrix[i, j]), rng)
        return PETMatrix(tuple(task_type_names), tuple(machine_type_names), entries)


def build_pet_from_means(mean_matrix: np.ndarray, task_type_names: Sequence[str],
                         machine_type_names: Sequence[str],
                         rng: Optional[np.random.Generator] = None,
                         samples_per_pair: int = 500,
                         scale_range: Tuple[float, float] = (1.0, 20.0),
                         max_impulses: int = 24) -> PETMatrix:
    """Convenience wrapper around :class:`GammaPETBuilder`."""
    builder = GammaPETBuilder(samples_per_pair=samples_per_pair,
                              scale_range=scale_range,
                              max_impulses=max_impulses)
    return builder.build(mean_matrix, task_type_names, machine_type_names, rng)
