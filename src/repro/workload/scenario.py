"""Scenario assembly: platform + PET + task stream for one simulation trial.

A :class:`Scenario` captures everything needed to instantiate one simulation
run: the platform, the task types, a PET matrix, and the generated task
instances (arrival times, types, deadlines).  Scenario *presets* reproduce
the paper's experimental setups:

* :func:`spec_scenario` -- 12 SPEC task types on 8 heterogeneous machines,
  oversubscription levels named after the paper's 20k/30k/40k workloads;
* :func:`homogeneous_scenario` -- same task types on 8 identical machines;
* :func:`transcoding_scenario` -- 4 transcoding task types on 4 VM types
  (2 machines each), moderately oversubscribed.

All presets accept a ``scale`` factor that shrinks the number of tasks while
keeping the arrival *intensity* (and hence the oversubscription behaviour)
unchanged, so laptop-scale runs preserve the shape of the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pet import PETMatrix
from ..sim.machine import Machine
from ..sim.task import Task, TaskType
from .arrivals import rate_for_oversubscription
from .deadlines import PaperDeadlinePolicy
from .homogeneous import HomogeneousWorkloadFactory
from .platforms import Platform
from .spec import SpecWorkloadFactory
from .transcoding import TranscodingWorkloadFactory

__all__ = [
    "OVERSUBSCRIPTION_LEVELS",
    "PAPER_TASK_COUNTS",
    "Scenario",
    "ScenarioSpec",
    "spec_scenario",
    "homogeneous_scenario",
    "transcoding_scenario",
    "build_scenario",
]

#: Oversubscription factor (arrival rate / processing capacity) associated
#: with each of the paper's workload-intensity labels.  The paper's 20k
#: workload mildly oversubscribes the system while 40k roughly doubles its
#: capacity; the factors keep those ratios.
OVERSUBSCRIPTION_LEVELS: Dict[str, float] = {
    "20k": 1.05,
    "30k": 1.55,
    "40k": 2.05,
}

#: Number of tasks of each paper workload (scaled by ``scale`` in presets).
PAPER_TASK_COUNTS: Dict[str, int] = {"20k": 20_000, "30k": 30_000, "40k": 40_000}


@dataclass(frozen=True)
class ScenarioSpec:
    """Parameters defining a scenario preset.

    Attributes
    ----------
    name:
        Scenario family name ("spec", "homogeneous", "transcoding").
    level:
        Oversubscription label ("20k", "30k", "40k").
    scale:
        Fraction of the paper's task count to generate (1.0 = paper scale).
    gamma:
        Deadline slack coefficient of the paper's deadline formula.
    queue_capacity:
        Machine-queue capacity.
    seed:
        Base seed for PET sampling and workload generation.
    arrival:
        Name of the arrival process in the
        :data:`repro.api.registries.ARRIVALS` registry ("poisson" is the
        paper's process).
    """

    name: str = "spec"
    level: str = "30k"
    scale: float = 0.02
    gamma: float = 1.0
    queue_capacity: int = 6
    seed: int = 0
    rate_multiplier: float = 1.0
    arrival: str = "poisson"

    def __post_init__(self):
        if self.level not in OVERSUBSCRIPTION_LEVELS:
            raise ValueError(f"unknown oversubscription level {self.level!r}; "
                             f"expected one of {sorted(OVERSUBSCRIPTION_LEVELS)}")
        if not 0 < self.scale <= 1.0:
            raise ValueError("scale must be within (0, 1]")
        if self.gamma < 0:
            raise ValueError("gamma cannot be negative")
        if self.rate_multiplier <= 0:
            raise ValueError("rate multiplier must be positive")

    @property
    def num_tasks(self) -> int:
        """Number of task instances generated for this spec."""
        return max(int(round(PAPER_TASK_COUNTS[self.level] * self.scale)), 10)

    @property
    def oversubscription(self) -> float:
        """Arrival-rate multiple of the platform's (mean-based) processing capacity.

        The ``rate_multiplier`` corrects the capacity estimate of scenarios
        whose mapping affinity makes the effective capacity much larger than
        the naive PET-wide-mean estimate (the transcoding workload, where the
        GPU handles codec changes several times faster than the average
        machine).
        """
        return OVERSUBSCRIPTION_LEVELS[self.level] * self.rate_multiplier

    # ------------------------------------------------------------------
    # Serialisation hooks (used by the declarative experiment plans)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain JSON/TOML-serialisable representation of the spec."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Unknown keys are rejected with the accepted set in the message, so a
        hand-edited plan or spool cannot silently drop a parameter.
        """
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec key(s) {', '.join(map(repr, unknown))}; "
                f"accepted: {', '.join(sorted(known))}")
        return cls(**payload)


@dataclass
class Scenario:
    """A fully materialised simulation scenario.

    Attributes
    ----------
    spec:
        The parameters this scenario was generated from.
    platform:
        Machine types / counts / prices.
    task_types:
        Task types matching the PET rows.
    pet:
        The sampled PET matrix.
    tasks:
        Task instances ordered by arrival time; these objects are *templates*
        -- use :meth:`fresh_tasks` to obtain simulation-ready copies.
    arrival_rate:
        Arrival rate (tasks per time unit) used to generate the task stream.
    """

    spec: ScenarioSpec
    platform: Platform
    task_types: Tuple[TaskType, ...]
    pet: PETMatrix
    tasks: List[Task] = field(default_factory=list)
    arrival_rate: float = 0.0

    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of generated task instances."""
        return len(self.tasks)

    def fresh_tasks(self) -> List[Task]:
        """Deep-ish copies of the task templates, safe to submit to a system."""
        return [Task(id=t.id, type_id=t.type_id, arrival=t.arrival, deadline=t.deadline)
                for t in self.tasks]

    def build_machines(self) -> List[Machine]:
        """Fresh machine instances for one simulation run."""
        return self.platform.build_machines()

    def describe(self) -> str:
        """One-line human-readable description."""
        return (f"Scenario({self.spec.name}, level={self.spec.level}, "
                f"tasks={self.num_tasks}, machines={self.platform.num_machines}, "
                f"oversubscription={self.spec.oversubscription:.2f})")


# ----------------------------------------------------------------------
# Preset construction
# ----------------------------------------------------------------------

def _generate_tasks(pet: PETMatrix, platform: Platform, spec: ScenarioSpec,
                    rng: np.random.Generator) -> Tuple[List[Task], float]:
    """Generate the task stream (types, arrivals, deadlines) of a scenario."""
    from ..api.registries import ARRIVALS

    rate = rate_for_oversubscription(pet, platform.num_machines, spec.oversubscription)
    process = ARRIVALS.create(spec.arrival, rate=rate)
    arrivals = process.generate(spec.num_tasks, rng)
    deadline_policy = PaperDeadlinePolicy(gamma=spec.gamma)
    type_ids = rng.integers(0, pet.num_task_types, size=spec.num_tasks)
    tasks: List[Task] = []
    for task_id, (arrival, type_id) in enumerate(zip(arrivals, type_ids)):
        deadline = deadline_policy.deadline(arrival, int(type_id), pet)
        tasks.append(Task(id=task_id, type_id=int(type_id), arrival=int(arrival),
                          deadline=deadline))
    return tasks, rate


def spec_scenario(level: str = "30k", scale: float = 0.02, gamma: float = 1.0,
                  seed: int = 0, queue_capacity: int = 6,
                  arrival: str = "poisson") -> Scenario:
    """SPEC-like heterogeneous scenario (the paper's primary setup)."""
    spec = ScenarioSpec(name="spec", level=level, scale=scale, gamma=gamma,
                        queue_capacity=queue_capacity, seed=seed,
                        arrival=arrival)
    rng = np.random.default_rng(seed)
    factory = SpecWorkloadFactory(queue_capacity=queue_capacity)
    platform = factory.platform()
    pet = factory.build_pet(rng)
    tasks, rate = _generate_tasks(pet, platform, spec, rng)
    return Scenario(spec=spec, platform=platform, task_types=factory.task_types(),
                    pet=pet, tasks=tasks, arrival_rate=rate)


def homogeneous_scenario(level: str = "30k", scale: float = 0.02, gamma: float = 1.0,
                         seed: int = 0, queue_capacity: int = 6,
                         num_machines: int = 8,
                         arrival: str = "poisson") -> Scenario:
    """Homogeneous scenario: SPEC task types on identical machines (Fig. 7b)."""
    spec = ScenarioSpec(name="homogeneous", level=level, scale=scale, gamma=gamma,
                        queue_capacity=queue_capacity, seed=seed,
                        arrival=arrival)
    rng = np.random.default_rng(seed)
    factory = HomogeneousWorkloadFactory(num_machines=num_machines,
                                         queue_capacity=queue_capacity)
    platform = factory.platform()
    pet = factory.build_pet(rng)
    tasks, rate = _generate_tasks(pet, platform, spec, rng)
    return Scenario(spec=spec, platform=platform, task_types=factory.task_types(),
                    pet=pet, tasks=tasks, arrival_rate=rate)


def transcoding_scenario(level: str = "20k", scale: float = 0.02, gamma: float = 1.0,
                         seed: int = 0, queue_capacity: int = 6,
                         machines_per_type: int = 2,
                         rate_multiplier: float = 1.4,
                         arrival: str = "poisson") -> Scenario:
    """Video-transcoding validation scenario (Fig. 10).

    The transcoding traces of the paper have a lower arrival rate and the
    system is only moderately oversubscribed; the default level is therefore
    "20k".  The strong task/machine affinity of this workload (codec changes
    run far faster on the GPU type) makes the effective capacity much higher
    than the naive PET-wide-mean estimate, so the arrival rate is scaled by
    ``rate_multiplier`` to reach the moderate oversubscription the paper
    describes.
    """
    spec = ScenarioSpec(name="transcoding", level=level, scale=scale, gamma=gamma,
                        queue_capacity=queue_capacity, seed=seed,
                        rate_multiplier=rate_multiplier, arrival=arrival)
    rng = np.random.default_rng(seed)
    factory = TranscodingWorkloadFactory(machines_per_type=machines_per_type,
                                         queue_capacity=queue_capacity)
    platform = factory.platform()
    pet = factory.build_pet(rng)
    tasks, rate = _generate_tasks(pet, platform, spec, rng)
    return Scenario(spec=spec, platform=platform, task_types=factory.task_types(),
                    pet=pet, tasks=tasks, arrival_rate=rate)


#: Scenario builders by family name.  Read-only legacy view kept for
#: backward compatibility -- mutating this dict has no effect; the
#: canonical registry is :data:`repro.api.registries.SCENARIOS` and
#: anything registered there is automatically available to
#: :func:`build_scenario`, the fluent builder and the CLI.
_SCENARIO_BUILDERS = {
    "spec": spec_scenario,
    "homogeneous": homogeneous_scenario,
    "transcoding": transcoding_scenario,
}


def build_scenario(name: str, **kwargs) -> Scenario:
    """Build a scenario preset by family name ("spec", "homogeneous", ...)."""
    from ..api.registries import SCENARIOS
    return SCENARIOS.create(name, **kwargs)
