"""Task arrival generation and oversubscription control.

The paper evaluates three *oversubscription levels* described by the total
number of arriving tasks (20k, 30k, 40k) over the same time horizon: the more
tasks arrive per time unit, the more oversubscribed the system becomes.  This
module exposes that knob explicitly: arrivals are a Poisson process whose
rate is expressed as a multiple of the platform's processing capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.pet import PETMatrix

__all__ = ["ArrivalProcess", "PoissonArrivals", "UniformArrivals",
           "system_capacity", "rate_for_oversubscription"]


def system_capacity(pet: PETMatrix, num_machines: int) -> float:
    """Aggregate processing capacity in tasks per time unit.

    The capacity estimate assumes task types are equally likely and machines
    process the *average* task at the PET-wide mean execution time; it is the
    denominator used to express an arrival rate as an oversubscription
    factor.
    """
    if num_machines < 1:
        raise ValueError("need at least one machine")
    return num_machines / pet.overall_mean()


def rate_for_oversubscription(pet: PETMatrix, num_machines: int,
                              oversubscription: float) -> float:
    """Arrival rate (tasks per time unit) for a target oversubscription factor."""
    if oversubscription <= 0:
        raise ValueError("oversubscription factor must be positive")
    return oversubscription * system_capacity(pet, num_machines)


class ArrivalProcess:
    """Interface of arrival-time generators."""

    def generate(self, n_tasks: int, rng: np.random.Generator) -> List[int]:
        """Return ``n_tasks`` non-decreasing integer arrival times."""
        raise NotImplementedError  # pragma: no cover - interface


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrival process.

    Attributes
    ----------
    rate:
        Expected number of arrivals per time unit.
    start_time:
        Time of the first possible arrival.
    """

    rate: float
    start_time: int = 0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.start_time < 0:
            raise ValueError("start time cannot be negative")

    def generate(self, n_tasks: int, rng: np.random.Generator) -> List[int]:
        """Draw exponential inter-arrival gaps and accumulate them."""
        if n_tasks < 0:
            raise ValueError("number of tasks cannot be negative")
        if n_tasks == 0:
            return []
        gaps = rng.exponential(1.0 / self.rate, size=n_tasks)
        times = np.floor(self.start_time + np.cumsum(gaps)).astype(np.int64)
        # Ensure non-decreasing integer times even after flooring.
        times = np.maximum.accumulate(times)
        return [int(t) for t in times]

    def expected_duration(self, n_tasks: int) -> float:
        """Expected time span covered by ``n_tasks`` arrivals."""
        return n_tasks / self.rate


@dataclass(frozen=True)
class UniformArrivals(ArrivalProcess):
    """Deterministic evenly-spaced arrival process.

    Tasks arrive exactly ``1 / rate`` time units apart (before integer
    flooring).  Useful as a burstiness-free baseline against the Poisson
    process and as the simplest example of a pluggable arrival process.

    Attributes
    ----------
    rate:
        Number of arrivals per time unit.
    start_time:
        Time origin of the schedule; the first task arrives one gap
        (``1 / rate``) after it, mirroring the Poisson process.
    """

    rate: float
    start_time: int = 0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.start_time < 0:
            raise ValueError("start time cannot be negative")

    def generate(self, n_tasks: int, rng: np.random.Generator) -> List[int]:
        """Evenly spaced integer arrival times (``rng`` is unused)."""
        if n_tasks < 0:
            raise ValueError("number of tasks cannot be negative")
        gap = 1.0 / self.rate
        times = np.floor(self.start_time + gap * np.arange(1, n_tasks + 1))
        times = np.maximum.accumulate(times.astype(np.int64))
        return [int(t) for t in times]

    def expected_duration(self, n_tasks: int) -> float:
        """Time span covered by ``n_tasks`` arrivals."""
        return n_tasks / self.rate
