"""Homogeneous-system workload (Fig. 7b).

The paper shows that the dropping mechanism also improves homogeneous
systems.  The homogeneous scenario keeps the twelve SPEC task types but runs
them on eight identical machines: a single machine type whose mean execution
time per task type is the row average of the heterogeneous SPEC matrix, so
the total processing capacity is comparable with the heterogeneous scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.pet import PETMatrix
from ..sim.machine import MachineType
from ..sim.task import TaskType
from .pet_builder import GammaPETBuilder
from .platforms import Platform
from .spec import SPEC_TASK_TYPE_NAMES, spec_mean_matrix

__all__ = ["HomogeneousWorkloadFactory", "HOMOGENEOUS_MACHINE_NAME"]

#: Name of the single machine type of the homogeneous platform.
HOMOGENEOUS_MACHINE_NAME = "uniform-node"

#: Price (dollars per hour) of the uniform machine type.
HOMOGENEOUS_MACHINE_PRICE = 0.45


@dataclass(frozen=True)
class HomogeneousWorkloadFactory:
    """Builds a single-machine-type platform with the SPEC task types.

    Attributes
    ----------
    num_machines:
        Number of identical machines (paper scenario: 8).
    queue_capacity:
        Machine-queue capacity (paper: 6).
    pet_builder:
        Configuration of the Gamma sampling + histogram PET construction.
    """

    num_machines: int = 8
    queue_capacity: int = 6
    pet_builder: GammaPETBuilder = GammaPETBuilder()

    def __post_init__(self):
        if self.num_machines < 1:
            raise ValueError("need at least one machine")

    # ------------------------------------------------------------------
    def platform(self) -> Platform:
        """Eight identical machines of one type."""
        machine_type = MachineType(id=0, name=HOMOGENEOUS_MACHINE_NAME,
                                   price_per_hour=HOMOGENEOUS_MACHINE_PRICE)
        return Platform(machine_types=(machine_type,),
                        machines_per_type=(self.num_machines,),
                        queue_capacity=self.queue_capacity)

    def task_types(self) -> Tuple[TaskType, ...]:
        """The twelve SPEC task types."""
        return tuple(TaskType(id=i, name=name)
                     for i, name in enumerate(SPEC_TASK_TYPE_NAMES))

    def mean_matrix(self) -> np.ndarray:
        """Column vector of per-task-type means (row averages of the SPEC matrix)."""
        return spec_mean_matrix().mean(axis=1, keepdims=True)

    def build_pet(self, rng: Optional[np.random.Generator] = None) -> PETMatrix:
        """Sample the 12×1 PET matrix of the homogeneous platform."""
        rng = rng if rng is not None else np.random.default_rng()
        return self.pet_builder.build(self.mean_matrix(), SPEC_TASK_TYPE_NAMES,
                                      (HOMOGENEOUS_MACHINE_NAME,), rng)
