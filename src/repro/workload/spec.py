"""SPECint-inspired heterogeneous workload (the paper's primary scenario).

The paper's main experiments use twelve task types whose mean execution times
come from SPECint benchmark results on eight physical machines (Dell
Precision 380, Apple iMac Core Duo, Apple XServe, IBM System X 3455, Shuttle
SN25P, IBM System P 570, SunFire 3800, IBM BladeCenter HS21XM), scaled so
mean task-type execution times fall in the 50-200 ms range.

We do not have the SPEC measurement tables, so the mean matrix is synthesised
with the same structural properties (see DESIGN.md, substitutions): every
task type has a base weight in [50, 200] ms, every machine has a speed
factor, and a deterministic perturbation makes the heterogeneity
*inconsistent* -- machine orderings differ across task types, exactly the
property the paper relies on.  The matrix is then fed through the Gamma
sampling + histogram pipeline of :mod:`repro.workload.pet_builder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.pet import PETMatrix
from ..sim.machine import MachineType
from ..sim.task import TaskType
from .pet_builder import GammaPETBuilder
from .platforms import Platform

__all__ = ["SPEC_TASK_TYPE_NAMES", "SPEC_MACHINE_NAMES", "SPEC_MACHINE_PRICES",
           "spec_mean_matrix", "SpecWorkloadFactory"]

#: Twelve SPECint 2006 benchmark names used as task-type labels.
SPEC_TASK_TYPE_NAMES: Tuple[str, ...] = (
    "perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer",
    "sjeng", "libquantum", "h264ref", "omnetpp", "astar", "xalancbmk",
)

#: The eight machines listed in the paper's experimental setup (footnote 1).
SPEC_MACHINE_NAMES: Tuple[str, ...] = (
    "dell-precision-380", "apple-imac-core-duo", "apple-xserve",
    "ibm-system-x3455", "shuttle-sn25p", "ibm-system-p570",
    "sunfire-3800", "ibm-bladecenter-hs21xm",
)

#: AWS-style on-demand prices (dollars per hour) mapped onto the simulated
#: machines for the cost analysis of Fig. 9.  Faster machines cost more.
SPEC_MACHINE_PRICES: Tuple[float, ...] = (
    0.34, 0.17, 0.23, 0.50, 0.27, 0.96, 0.68, 0.77,
)

#: Relative speed factor of each machine (larger = slower machine).
_MACHINE_SLOWDOWN: Tuple[float, ...] = (1.30, 1.75, 1.55, 1.00, 1.45, 0.62, 0.85, 0.72)

#: Base weight (ms on the reference machine) of each task type, spanning the
#: paper's 50-200 ms range of mean execution times.
_TASK_WEIGHT: Tuple[float, ...] = (55.0, 70.0, 85.0, 200.0, 95.0, 120.0,
                                   110.0, 60.0, 150.0, 170.0, 130.0, 185.0)


def spec_mean_matrix() -> np.ndarray:
    """Deterministic 12×8 mean execution-time matrix with inconsistent heterogeneity.

    The entry ``(i, j)`` is ``weight_i × slowdown_j`` modulated by a
    deterministic affinity term that advantages some (task, machine)
    combinations and penalises others, which breaks the consistent machine
    ordering and yields an *inconsistently* heterogeneous matrix.
    """
    weights = np.asarray(_TASK_WEIGHT, dtype=np.float64)
    slowdown = np.asarray(_MACHINE_SLOWDOWN, dtype=np.float64)
    base = np.outer(weights, slowdown)
    n_tasks, n_machines = base.shape
    i = np.arange(n_tasks)[:, None]
    j = np.arange(n_machines)[None, :]
    # Deterministic, smooth ±35 % affinity perturbation.
    affinity = 1.0 + 0.35 * np.sin(1.7 * i + 2.3 * j) * np.cos(0.9 * i - 1.1 * j)
    means = base * affinity
    return np.clip(means, 30.0, 400.0)


@dataclass(frozen=True)
class SpecWorkloadFactory:
    """Builds the SPEC-like platform, task types and PET matrix.

    Attributes
    ----------
    queue_capacity:
        Machine-queue capacity (paper: 6).
    pet_builder:
        Configuration of the Gamma sampling + histogram PET construction.
    """

    queue_capacity: int = 6
    pet_builder: GammaPETBuilder = GammaPETBuilder()

    # ------------------------------------------------------------------
    def platform(self) -> Platform:
        """The eight-machine heterogeneous platform (one machine per type)."""
        machine_types = tuple(
            MachineType(id=j, name=name, price_per_hour=SPEC_MACHINE_PRICES[j])
            for j, name in enumerate(SPEC_MACHINE_NAMES))
        return Platform(machine_types=machine_types,
                        machines_per_type=tuple(1 for _ in machine_types),
                        queue_capacity=self.queue_capacity)

    def task_types(self) -> Tuple[TaskType, ...]:
        """The twelve SPECint-named task types."""
        return tuple(TaskType(id=i, name=name)
                     for i, name in enumerate(SPEC_TASK_TYPE_NAMES))

    def build_pet(self, rng: Optional[np.random.Generator] = None) -> PETMatrix:
        """Sample a PET matrix from the deterministic mean matrix."""
        rng = rng if rng is not None else np.random.default_rng()
        return self.pet_builder.build(spec_mean_matrix(), SPEC_TASK_TYPE_NAMES,
                                      SPEC_MACHINE_NAMES, rng)
