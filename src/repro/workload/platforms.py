"""Platform descriptions: machine types, machine instances and prices.

A :class:`Platform` bundles everything static about the computing system:
the machine types (PET columns), the machine instances of each type, and
per-type pricing used by the cost analysis.  Workload modules
(:mod:`repro.workload.spec`, :mod:`repro.workload.transcoding`,
:mod:`repro.workload.homogeneous`) construct platforms together with a
matching PET matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..sim.machine import Machine, MachineType

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """Static description of the simulated machines.

    Attributes
    ----------
    machine_types:
        One entry per machine type, ids ``0..n-1`` in order.
    machines_per_type:
        How many machine instances of each type the platform contains.
    queue_capacity:
        Machine-queue capacity applied to every instantiated machine.
    """

    machine_types: Tuple[MachineType, ...]
    machines_per_type: Tuple[int, ...]
    queue_capacity: int = 6

    def __post_init__(self):
        object.__setattr__(self, "machine_types", tuple(self.machine_types))
        object.__setattr__(self, "machines_per_type", tuple(int(c) for c in self.machines_per_type))
        if len(self.machine_types) != len(self.machines_per_type):
            raise ValueError("machines_per_type must match machine_types")
        if not self.machine_types:
            raise ValueError("platform needs at least one machine type")
        for idx, mtype in enumerate(self.machine_types):
            if mtype.id != idx:
                raise ValueError("machine type ids must be 0..n-1 in order")
        if any(count < 1 for count in self.machines_per_type):
            raise ValueError("each machine type needs at least one instance")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be at least 1")

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        """Total number of machine instances."""
        return sum(self.machines_per_type)

    @property
    def machine_type_names(self) -> Tuple[str, ...]:
        """Names of the machine types in id order."""
        return tuple(mt.name for mt in self.machine_types)

    def build_machines(self) -> List[Machine]:
        """Instantiate fresh :class:`Machine` objects for one simulation run."""
        machines: List[Machine] = []
        next_id = 0
        for mtype, count in zip(self.machine_types, self.machines_per_type):
            for _ in range(count):
                machines.append(Machine(machine_id=next_id, type_id=mtype.id,
                                        queue_capacity=self.queue_capacity))
                next_id += 1
        return machines

    def price_of_type(self, type_id: int) -> float:
        """Dollar-per-hour price of a machine type."""
        return self.machine_types[int(type_id)].price_per_hour

    def is_homogeneous(self) -> bool:
        """True when the platform has a single machine type."""
        return len(self.machine_types) == 1
