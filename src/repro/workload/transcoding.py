"""Video-transcoding validation workload (Fig. 10).

The paper validates its findings on a live video-transcoding workload with
four task types (changing resolution, bit rate, compression format, and
packaging/container) on four heterogeneous AWS VM types, two machines of each
type (eight machines total).  Execution-time variation *across* task types is
high -- some transcoding operations are much cheaper than others -- and the
system is only moderately oversubscribed.

The original execution traces are not available, so the mean matrix is
synthetic with the stated properties (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.pet import PETMatrix
from ..sim.machine import MachineType
from ..sim.task import TaskType
from .pet_builder import GammaPETBuilder
from .platforms import Platform

__all__ = ["TRANSCODING_TASK_TYPE_NAMES", "TRANSCODING_MACHINE_NAMES",
           "TRANSCODING_MACHINE_PRICES", "transcoding_mean_matrix",
           "TranscodingWorkloadFactory"]

#: Four video-transcoding operations used as task types.
TRANSCODING_TASK_TYPE_NAMES: Tuple[str, ...] = (
    "change-resolution", "change-bitrate", "change-codec", "change-container",
)

#: Four AWS-like VM types; two machines of each type are instantiated.
TRANSCODING_MACHINE_NAMES: Tuple[str, ...] = (
    "general-purpose", "cpu-optimized", "memory-optimized", "gpu",
)

#: On-demand prices (dollars per hour) of the VM types.
TRANSCODING_MACHINE_PRICES: Tuple[float, ...] = (0.19, 0.34, 0.38, 0.90)


def transcoding_mean_matrix() -> np.ndarray:
    """Deterministic 4×4 mean execution-time matrix (ms).

    Codec transcoding is by far the most expensive operation while container
    re-packaging is nearly free, producing the "high execution-time variation
    across task types" the paper describes; the GPU VM is only advantageous
    for codec/resolution work, which makes the heterogeneity inconsistent.
    """
    return np.array([
        #  general  cpu-opt  mem-opt   gpu
        [   95.0,    70.0,    88.0,    45.0],   # change-resolution
        [   60.0,    42.0,    55.0,    50.0],   # change-bitrate
        [  240.0,   170.0,   200.0,    80.0],   # change-codec
        [   22.0,    18.0,    16.0,    30.0],   # change-container
    ], dtype=np.float64)


@dataclass(frozen=True)
class TranscodingWorkloadFactory:
    """Builds the transcoding platform, task types and PET matrix.

    Attributes
    ----------
    machines_per_type:
        Number of VM instances per type (paper: two).
    queue_capacity:
        Machine-queue capacity (paper: 6).
    pet_builder:
        Configuration of the Gamma sampling + histogram PET construction.
    """

    machines_per_type: int = 2
    queue_capacity: int = 6
    pet_builder: GammaPETBuilder = GammaPETBuilder()

    def __post_init__(self):
        if self.machines_per_type < 1:
            raise ValueError("need at least one machine per type")

    # ------------------------------------------------------------------
    def platform(self) -> Platform:
        """The 4-type × ``machines_per_type`` heterogeneous platform."""
        machine_types = tuple(
            MachineType(id=j, name=name, price_per_hour=TRANSCODING_MACHINE_PRICES[j])
            for j, name in enumerate(TRANSCODING_MACHINE_NAMES))
        return Platform(machine_types=machine_types,
                        machines_per_type=tuple(self.machines_per_type
                                                for _ in machine_types),
                        queue_capacity=self.queue_capacity)

    def task_types(self) -> Tuple[TaskType, ...]:
        """The four transcoding task types."""
        return tuple(TaskType(id=i, name=name)
                     for i, name in enumerate(TRANSCODING_TASK_TYPE_NAMES))

    def build_pet(self, rng: Optional[np.random.Generator] = None) -> PETMatrix:
        """Sample a PET matrix from the deterministic mean matrix."""
        rng = rng if rng is not None else np.random.default_rng()
        return self.pet_builder.build(transcoding_mean_matrix(),
                                      TRANSCODING_TASK_TYPE_NAMES,
                                      TRANSCODING_MACHINE_NAMES, rng)
