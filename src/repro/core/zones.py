"""Dependence and influence zones of a queued task.

Section IV-B of the paper (Fig. 3) defines, for a task at position ``i`` of a
machine queue:

* the **dependence zone**: the tasks ahead of it (positions ``< i``), whose
  completion times its own completion time depends on, and
* the **influence zone**: the tasks behind it (positions ``> i``), whose
  completion times it influences.

The proactive dropping heuristic only needs to inspect a bounded prefix of
the influence zone, called the *effective depth* (η).
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = ["dependence_zone", "influence_zone", "effective_influence_zone"]


def _check_index(index: int, queue_length: int) -> None:
    if queue_length < 0:
        raise ValueError("queue length cannot be negative")
    if index < 0 or index >= queue_length:
        raise IndexError(f"index {index} out of range for queue of length {queue_length}")


def dependence_zone(index: int, queue_length: int) -> Tuple[int, ...]:
    """Indices of the tasks the task at ``index`` depends on (those ahead)."""
    _check_index(index, queue_length)
    return tuple(range(0, index))


def influence_zone(index: int, queue_length: int) -> Tuple[int, ...]:
    """Indices of the tasks influenced by the task at ``index`` (those behind)."""
    _check_index(index, queue_length)
    return tuple(range(index + 1, queue_length))


def effective_influence_zone(index: int, queue_length: int, eta: int) -> Tuple[int, ...]:
    """First ``eta`` positions of the influence zone of the task at ``index``.

    This is the window ``<i+1, ..., i+η>`` used by Eq. 8; it is clipped at
    the end of the queue.
    """
    if eta < 0:
        raise ValueError("effective depth must be non-negative")
    zone = influence_zone(index, queue_length)
    return zone[:eta]
