"""Instantaneous robustness of a machine queue (Eq. 3 and Eq. 7).

The *instantaneous robustness* of machine ``j`` is the sum of the chances of
success of its pending tasks.  The paper's hypothesis is that improving
instantaneous robustness at every mapping event improves the overall system
robustness (the fraction of tasks completed on time over a whole run).
"""

from __future__ import annotations

from typing import List, Sequence

from .completion import (QueueEntry, chance_of_success, queue_completion_pmfs,
                         queue_completion_with_drops)
from .pmf import PMF

__all__ = [
    "queue_success_probabilities",
    "queue_success_probabilities_with_drops",
    "instantaneous_robustness",
    "instantaneous_robustness_with_drops",
    "windowed_robustness",
    "windowed_robustness_with_drop",
]


def queue_success_probabilities(base: PMF, entries: Sequence[QueueEntry],
                                prune_eps: float = 1e-12) -> List[float]:
    """Chance of success ``p_{ij}`` of every pending task in queue order."""
    completions = queue_completion_pmfs(base, entries, prune_eps)
    return [chance_of_success(c, e.deadline) for c, e in zip(completions, entries)]


def queue_success_probabilities_with_drops(base: PMF, entries: Sequence[QueueEntry],
                                           dropped: Sequence[int],
                                           prune_eps: float = 1e-12) -> List[float]:
    """Chances of success when a subset of positions is provisionally dropped.

    Dropped positions get a chance of success of ``0.0`` (a dropped task can
    no longer complete), matching the accounting of Eq. 7 where the dropped
    task is excluded from the sum.
    """
    completions = queue_completion_with_drops(base, entries, dropped, prune_eps)
    probs: List[float] = []
    for completion, entry in zip(completions, entries):
        if completion is None:
            probs.append(0.0)
        else:
            probs.append(chance_of_success(completion, entry.deadline))
    return probs


def instantaneous_robustness(base: PMF, entries: Sequence[QueueEntry],
                             prune_eps: float = 1e-12) -> float:
    """Instantaneous robustness ``R_j`` of a machine queue (Eq. 3)."""
    return float(sum(queue_success_probabilities(base, entries, prune_eps)))


def instantaneous_robustness_with_drops(base: PMF, entries: Sequence[QueueEntry],
                                        dropped: Sequence[int],
                                        prune_eps: float = 1e-12) -> float:
    """Instantaneous robustness ``R_j^{(D)}`` after dropping positions ``D`` (Eq. 7)."""
    return float(sum(queue_success_probabilities_with_drops(base, entries, dropped,
                                                            prune_eps)))


def windowed_robustness(success_probs: Sequence[float], start: int, eta: int) -> float:
    """Sum of chances of success over ``positions [start, start+η]`` inclusive.

    This is the right-hand side window of Eq. 8
    (``Σ_{n=i}^{i+η} p_{nj}``) computed from pre-computed per-task chances.
    """
    if eta < 0:
        raise ValueError("effective depth must be non-negative")
    end = min(start + eta, len(success_probs) - 1)
    return float(sum(success_probs[start:end + 1]))


def windowed_robustness_with_drop(base: PMF, entries: Sequence[QueueEntry],
                                  drop_index: int, eta: int,
                                  prune_eps: float = 1e-12) -> float:
    """Left-hand side window of Eq. 8: ``Σ_{n=i+1}^{i+η} p^{(i)}_{nj}``.

    Chance-of-success sum of the first ``eta`` tasks of the influence zone of
    ``drop_index`` when that task is provisionally dropped.
    """
    if eta < 0:
        raise ValueError("effective depth must be non-negative")
    end = min(drop_index + eta, len(entries) - 1)
    if end <= drop_index:
        return 0.0
    probs = queue_success_probabilities_with_drops(base, entries[:end + 1],
                                                   [drop_index], prune_eps)
    return float(sum(probs[drop_index + 1:end + 1]))
