"""Probabilistic core of the task-dropping mechanism.

This package contains the paper's mathematical machinery: discrete PMFs, the
PET matrix, completion-time propagation along machine queues, instantaneous
robustness, and the family of dropping policies built on top of them.
"""

from .completion import (QueueEntry, chance_of_success, completion_pmf,
                         queue_completion_pmfs, queue_completion_with_drops)
from .pet import PETMatrix, PETValidationError
from .pmf import PMF
from .robustness import (instantaneous_robustness,
                         instantaneous_robustness_with_drops,
                         queue_success_probabilities,
                         queue_success_probabilities_with_drops)
from .zones import dependence_zone, effective_influence_zone, influence_zone

__all__ = [
    "PMF",
    "PETMatrix",
    "PETValidationError",
    "QueueEntry",
    "completion_pmf",
    "chance_of_success",
    "queue_completion_pmfs",
    "queue_completion_with_drops",
    "instantaneous_robustness",
    "instantaneous_robustness_with_drops",
    "queue_success_probabilities",
    "queue_success_probabilities_with_drops",
    "dependence_zone",
    "influence_zone",
    "effective_influence_zone",
]
