"""Task-dropping policies (reactive, proactive heuristic, optimal, threshold)."""

from .base import DropDecision, DroppingPolicy, MachineQueueView
from .heuristic import DEFAULT_BETA, DEFAULT_ETA, ProactiveHeuristicDropping
from .noop import NoProactiveDropping
from .optimal import OptimalProactiveDropping, enumerate_droppable_subsets
from .reactive import expired_indices, has_expired
from .threshold import AdaptiveThresholdDropping, ThresholdDropping

__all__ = [
    "DropDecision",
    "DroppingPolicy",
    "MachineQueueView",
    "NoProactiveDropping",
    "ProactiveHeuristicDropping",
    "OptimalProactiveDropping",
    "ThresholdDropping",
    "AdaptiveThresholdDropping",
    "enumerate_droppable_subsets",
    "expired_indices",
    "has_expired",
    "DEFAULT_BETA",
    "DEFAULT_ETA",
]
