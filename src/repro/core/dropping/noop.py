"""A dropping policy that never drops proactively.

Combined with the simulator's built-in reactive dropping this reproduces the
"+ReactDrop" configurations of Figures 7 and 10: tasks are only discarded
once they have already missed their deadlines.
"""

from __future__ import annotations

from .base import DropDecision, DroppingPolicy, MachineQueueView

__all__ = ["NoProactiveDropping"]


class NoProactiveDropping(DroppingPolicy):
    """Never select any task for proactive dropping."""

    name = "react-only"
    memoizable = True  # decision is constant
    uses_pressure = False

    def evaluate_queue(self, view: MachineQueueView) -> DropDecision:
        """Return an empty decision regardless of the queue state."""
        return DropDecision(drop_indices=())
