"""Interfaces shared by all task-dropping policies.

A dropping policy inspects the scheduler's probabilistic view of one machine
queue at a mapping event and decides which *pending* (not yet running) tasks
to drop proactively.  Policies never see the actual sampled execution times;
they only see the machine's base completion PMF and the PET-derived execution
PMFs of the queued tasks, exactly like the mechanism described in Section IV
of the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Sequence

from ..completion import QueueEntry
from ..pmf import PMF

__all__ = ["MachineQueueView", "DropDecision", "DroppingPolicy"]


@dataclass(frozen=True)
class MachineQueueView:
    """Probabilistic snapshot of one machine queue at a mapping event.

    Attributes
    ----------
    machine_id:
        Identifier of the machine (for bookkeeping / tracing only).
    now:
        Current simulation time.
    base_pmf:
        Completion-time PMF of whatever precedes the first pending task: the
        running task's conditioned completion PMF or a delta at ``now`` when
        the machine is idle.
    entries:
        Pending tasks in queue order (head of queue first).
    pressure:
        Optional system-load signal in ``[0, 1]`` (ratio of unmapped work to
        queue capacity); used only by adaptive threshold policies.
    """

    machine_id: int
    now: int
    base_pmf: PMF
    entries: Sequence[QueueEntry] = field(default_factory=tuple)
    pressure: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "entries", tuple(self.entries))

    @property
    def queue_length(self) -> int:
        """Number of pending tasks visible to the dropping policy."""
        return len(self.entries)


@dataclass(frozen=True)
class DropDecision:
    """Outcome of evaluating one machine queue.

    Attributes
    ----------
    drop_indices:
        Positions (into ``MachineQueueView.entries``) to drop proactively,
        in ascending order.
    robustness_before:
        Instantaneous robustness of the queue if nothing is dropped, when the
        policy computed it (``nan`` otherwise).
    robustness_after:
        Instantaneous robustness of the queue after the selected drops, when
        the policy computed it (``nan`` otherwise).
    """

    drop_indices: Sequence[int] = ()
    robustness_before: float = float("nan")
    robustness_after: float = float("nan")

    def __post_init__(self):
        object.__setattr__(self, "drop_indices", tuple(sorted(int(i) for i in self.drop_indices)))

    @property
    def num_drops(self) -> int:
        """Number of tasks selected for proactive dropping."""
        return len(self.drop_indices)


class DroppingPolicy(abc.ABC):
    """Base class for proactive dropping policies.

    Subclasses implement :meth:`evaluate_queue`; the simulator calls it once
    per machine queue per mapping event, *after* reactive dropping of tasks
    that already missed their deadlines.
    """

    #: Human-readable policy name used in experiment reports.
    name: str = "base"

    #: When True the simulator may reuse a previous :class:`DropDecision`
    #: for a queue whose view is unchanged (same base PMF, same entries and
    #: -- if :attr:`uses_pressure` -- same pressure).  The reuse key does
    #: NOT include ``view.now``, so only policies that are pure functions
    #: of (base_pmf, entries, pressure) may opt in.  Every built-in policy
    #: qualifies and does; the default stays False so stateful or
    #: time-dependent custom policies are never silently memoised.
    memoizable: bool = False

    #: True when the decision depends on ``view.pressure``; the simulator
    #: then includes the pressure in its memoisation key.  Conservatively
    #: True by default; pressure-blind policies override it.
    uses_pressure: bool = True

    @abc.abstractmethod
    def evaluate_queue(self, view: MachineQueueView) -> DropDecision:
        """Decide which pending tasks of ``view`` to drop proactively."""

    def select_drops(self, view: MachineQueueView) -> List[int]:
        """Convenience wrapper returning only the drop indices."""
        return list(self.evaluate_queue(view).drop_indices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
