"""Reactive dropping: discard tasks that have already missed their deadlines.

Reactive dropping is not a policy choice in the paper -- it is always
performed as the first step of every mapping event (Step 2 of the Fig. 4
pseudo-code).  The helper here is shared by the simulator and by tests; it is
purely deterministic given the current time.
"""

from __future__ import annotations

from typing import List, Sequence

from ..completion import QueueEntry

__all__ = ["expired_indices", "has_expired"]


def has_expired(deadline: int, now: int) -> bool:
    """True when a task with ``deadline`` can no longer complete on time.

    Completion strictly before the deadline counts as success (Eq. 2), so a
    task whose deadline is ``<= now`` has already missed it.
    """
    return int(deadline) <= int(now)


def expired_indices(entries: Sequence[QueueEntry], now: int) -> List[int]:
    """Indices of pending queue entries whose deadlines have passed."""
    return [idx for idx, entry in enumerate(entries) if has_expired(entry.deadline, now)]
