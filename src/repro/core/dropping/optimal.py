"""Optimal proactive task dropping via exhaustive subset search (Section IV-D).

The optimal decision examines every subset of the droppable queue positions
(the last position is excluded because its influence zone is empty) and keeps
the subset whose removal maximises the instantaneous robustness of the queue.
With the paper's machine-queue capacity of six this is at most
``2^(q-1) = 32`` subsets per queue, which is feasible but considerably more
expensive than the single-pass heuristic.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Tuple

from ..completion import QueueEntry
from ..robustness import instantaneous_robustness, instantaneous_robustness_with_drops
from .base import DropDecision, DroppingPolicy, MachineQueueView

__all__ = ["OptimalProactiveDropping"]


class OptimalProactiveDropping(DroppingPolicy):
    """Exhaustive-search proactive dropping.

    Parameters
    ----------
    improvement_factor:
        Multiplicative improvement over the no-drop robustness required
        before a non-empty subset is preferred (the analogue of ``β`` for the
        optimal search; the paper's model uses ``β = 1``, i.e. any strict
        improvement).
    max_queue_length:
        Safety bound on the exhaustive search.  Queues longer than this raise
        ``ValueError`` instead of silently exploding (2^q growth).
    prune_eps:
        Probability-mass pruning threshold forwarded to PMF chaining.
    """

    name = "optimal"
    memoizable = True  # pure function of (base_pmf, entries)
    uses_pressure = False

    def __init__(self, improvement_factor: float = 1.0, max_queue_length: int = 16,
                 prune_eps: float = 1e-12):
        if improvement_factor < 1.0:
            raise ValueError("improvement factor must be >= 1")
        if max_queue_length < 1:
            raise ValueError("max_queue_length must be positive")
        self.improvement_factor = float(improvement_factor)
        self.max_queue_length = int(max_queue_length)
        self.prune_eps = float(prune_eps)

    def __repr__(self) -> str:
        return (f"OptimalProactiveDropping(improvement_factor="
                f"{self.improvement_factor})")

    # ------------------------------------------------------------------
    def evaluate_queue(self, view: MachineQueueView) -> DropDecision:
        """Search all droppable subsets and return the robustness-maximising one."""
        entries: Sequence[QueueEntry] = view.entries
        q = len(entries)
        if q == 0:
            return DropDecision(drop_indices=())
        if q > self.max_queue_length:
            raise ValueError(
                f"queue length {q} exceeds the exhaustive-search bound "
                f"{self.max_queue_length}; use the heuristic policy instead")

        baseline = instantaneous_robustness(view.base_pmf, entries, self.prune_eps)
        best_subset: Tuple[int, ...] = ()
        best_value = baseline

        droppable = list(range(q - 1))  # the last task is never worth dropping
        for size in range(1, len(droppable) + 1):
            for subset in combinations(droppable, size):
                value = instantaneous_robustness_with_drops(
                    view.base_pmf, entries, subset, self.prune_eps)
                if self._better(value, best_value, len(subset), len(best_subset),
                                baseline):
                    best_value = value
                    best_subset = subset

        return DropDecision(drop_indices=best_subset,
                            robustness_before=baseline,
                            robustness_after=best_value)

    # ------------------------------------------------------------------
    def _better(self, value: float, best_value: float, size: int, best_size: int,
                baseline: float) -> bool:
        """Strictly-better comparison with a minimal-drop-count tie-break."""
        # A non-empty subset must strictly beat the no-drop baseline scaled by
        # the improvement factor to be considered at all.
        if size > 0 and value <= baseline * self.improvement_factor + 1e-12:
            return False
        if value > best_value + 1e-12:
            return True
        if abs(value - best_value) <= 1e-12 and size < best_size:
            return True
        return False


def enumerate_droppable_subsets(queue_length: int) -> List[Tuple[int, ...]]:
    """All subsets of droppable positions for a queue of ``queue_length``.

    Exposed for tests and for the complexity analysis of Section IV-F: the
    number of returned subsets is ``2^(q-1)`` (the last position excluded).
    """
    if queue_length < 0:
        raise ValueError("queue length cannot be negative")
    droppable = list(range(max(queue_length - 1, 0)))
    subsets: List[Tuple[int, ...]] = [()]
    for size in range(1, len(droppable) + 1):
        subsets.extend(combinations(droppable, size))
    return subsets


__all__.append("enumerate_droppable_subsets")
