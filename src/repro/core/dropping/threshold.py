"""Threshold-based probabilistic dropping (the PAM+Threshold baseline).

Prior pruning mechanisms (Gentry et al., IPDPS'19; Denninnart et al., HCW'19)
drop a pending task when its chance of completing before its deadline falls
below a *user-defined threshold*.  The paper uses such a mechanism as the
baseline "PAM+Threshold" in Figures 8 and 9 and notes that the threshold is a
fine-grained, load-dependent parameter that cannot be statically chosen.

Two variants are provided:

* a **static** threshold, the classic user-supplied value, and
* an **adaptive** threshold that is adjusted at every mapping event from the
  observed system pressure (the ratio of unmapped work to machine-queue
  capacity), approximating the per-event adjustment described for the
  baseline in Section V-F.
"""

from __future__ import annotations

from typing import List

from ..completion import QueueEntry, chance_of_success, completion_pmf
from ..pmf import PMF
from .base import DropDecision, DroppingPolicy, MachineQueueView

__all__ = ["ThresholdDropping", "AdaptiveThresholdDropping"]


class ThresholdDropping(DroppingPolicy):
    """Drop every pending task whose chance of success is below a threshold.

    Parameters
    ----------
    threshold:
        Minimum acceptable chance of success in ``[0, 1]``.  Tasks strictly
        below it are dropped.
    prune_eps:
        Probability-mass pruning threshold forwarded to PMF chaining.
    """

    name = "threshold"
    memoizable = True  # pure function of (base_pmf, entries)
    uses_pressure = False

    def __init__(self, threshold: float = 0.2, prune_eps: float = 1e-12):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.threshold = float(threshold)
        self.prune_eps = float(prune_eps)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(threshold={self.threshold})"

    # ------------------------------------------------------------------
    def current_threshold(self, view: MachineQueueView) -> float:
        """Threshold in effect for this mapping event (constant here)."""
        return self.threshold

    def evaluate_queue(self, view: MachineQueueView) -> DropDecision:
        """Walk the queue once, dropping tasks below the in-effect threshold.

        As for the heuristic policy, a confirmed drop takes effect
        immediately: the chance of success of later tasks is evaluated on the
        surviving chain (this is what makes threshold pruning improve the
        tasks behind a dropped one).
        """
        entries = list(view.entries)
        if not entries:
            return DropDecision(drop_indices=())
        threshold = self.current_threshold(view)

        dropped: List[int] = []
        before = 0.0
        after = 0.0
        prefix: PMF = view.base_pmf
        kept_prefix: PMF = view.base_pmf
        for idx, entry in enumerate(entries):
            # Bookkeeping of the no-drop robustness for reporting purposes.
            kept_prefix = completion_pmf(kept_prefix, entry.exec_pmf, entry.deadline,
                                         self.prune_eps)
            before += chance_of_success(kept_prefix, entry.deadline)

            candidate = completion_pmf(prefix, entry.exec_pmf, entry.deadline,
                                       self.prune_eps)
            p = chance_of_success(candidate, entry.deadline)
            if p < threshold:
                dropped.append(idx)
            else:
                prefix = candidate
                after += p
        return DropDecision(drop_indices=dropped, robustness_before=before,
                            robustness_after=after)


class AdaptiveThresholdDropping(ThresholdDropping):
    """Threshold dropping with a pressure-adjusted threshold.

    The effective threshold grows linearly from ``base_threshold`` (idle
    system) to ``max_threshold`` (fully oversubscribed) with the view's
    ``pressure`` signal, so the policy prunes more aggressively as the system
    becomes more oversubscribed -- the per-mapping-event adjustment that the
    baseline of the paper requires the user to configure.
    """

    name = "threshold-adaptive"
    memoizable = True  # pure function of (base_pmf, entries, pressure)
    uses_pressure = True

    def __init__(self, base_threshold: float = 0.15, max_threshold: float = 0.6,
                 prune_eps: float = 1e-12):
        super().__init__(threshold=base_threshold, prune_eps=prune_eps)
        if not 0.0 <= base_threshold <= max_threshold <= 1.0:
            raise ValueError("need 0 <= base_threshold <= max_threshold <= 1")
        self.base_threshold = float(base_threshold)
        self.max_threshold = float(max_threshold)

    def __repr__(self) -> str:
        return (f"AdaptiveThresholdDropping(base={self.base_threshold}, "
                f"max={self.max_threshold})")

    def current_threshold(self, view: MachineQueueView) -> float:
        """Linear interpolation between the base and max thresholds."""
        pressure = min(max(view.pressure, 0.0), 1.0)
        return self.base_threshold + pressure * (self.max_threshold - self.base_threshold)
