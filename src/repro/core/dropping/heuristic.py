"""Autonomous proactive task-dropping heuristic (Section IV-E, Fig. 4).

The heuristic walks each machine queue head-to-tail exactly once.  For each
pending task ``i`` it compares the instantaneous robustness of the first
``η`` tasks of its influence zone (its *effective depth*) with and without
provisionally dropping ``i``.  Task ``i`` is dropped iff

    Σ_{n=i+1}^{i+η} p^{(i)}_{nj}  >  β · Σ_{n=i}^{i+η} p_{nj}          (Eq. 8)

where ``β >= 1`` is the *robustness improvement factor*.  ``β → 1`` drops on
any net improvement, ``β → ∞`` disables proactive dropping.

Unlike prior threshold-based pruning mechanisms, no user-supplied chance-of-
success threshold is involved: the decision is autonomous and derives solely
from the robustness comparison.
"""

from __future__ import annotations

from typing import List

from ..completion import QueueEntry, chance_of_success, completion_pmf
from ..pmf import PMF
from .base import DropDecision, DroppingPolicy, MachineQueueView

__all__ = ["ProactiveHeuristicDropping", "DEFAULT_BETA", "DEFAULT_ETA"]

#: Value of the robustness improvement factor used in the paper's evaluation
#: after the sensitivity study of Fig. 6.
DEFAULT_BETA = 1.0

#: Effective depth used in the paper's evaluation after the study of Fig. 5.
DEFAULT_ETA = 2


class ProactiveHeuristicDropping(DroppingPolicy):
    """Single-pass proactive dropping heuristic of Fig. 4.

    Parameters
    ----------
    beta:
        Robustness improvement factor ``β >= 1``.  The dropping of a task
        must improve the windowed instantaneous robustness by at least this
        factor to be enacted.
    eta:
        Effective depth ``η >= 1``: number of influence-zone tasks whose
        robustness gain may compensate the loss of the dropped task.
    prune_eps:
        Probability-mass pruning threshold forwarded to PMF chaining.
    """

    name = "heuristic"
    memoizable = True  # pure function of (base_pmf, entries)
    uses_pressure = False

    def __init__(self, beta: float = DEFAULT_BETA, eta: int = DEFAULT_ETA,
                 prune_eps: float = 1e-12):
        if beta < 1.0:
            raise ValueError("robustness improvement factor beta must be >= 1")
        if eta < 1:
            raise ValueError("effective depth eta must be >= 1")
        self.beta = float(beta)
        self.eta = int(eta)
        self.prune_eps = float(prune_eps)

    def __repr__(self) -> str:
        return f"ProactiveHeuristicDropping(beta={self.beta}, eta={self.eta})"

    # ------------------------------------------------------------------
    def evaluate_queue(self, view: MachineQueueView) -> DropDecision:
        """Single pass over the queue applying the Eq. 8 test to each task.

        Confirmed drops take effect immediately for the remainder of the
        pass: the completion chain of later tasks is computed over the
        surviving predecessors only, mirroring an actual removal from the
        machine queue.
        """
        entries = list(view.entries)
        q = len(entries)
        if q == 0:
            return DropDecision(drop_indices=())

        robustness_before = self._queue_robustness(view.base_pmf, entries)

        dropped: List[int] = []
        # ``prefix`` is the completion PMF of the last surviving task ahead of
        # the position currently being examined.
        prefix = view.base_pmf
        for i in range(q):
            # The last task of a queue has an empty influence zone: dropping
            # it can never improve instantaneous robustness, so it is skipped
            # (Section IV-D).
            if i == q - 1:
                break
            window_end = min(i + self.eta, q - 1)

            # Chances of success of tasks i..window_end when i is kept.
            kept_probs = self._window_probs(prefix, entries, i, window_end,
                                            skip=None)
            # Chances of success of tasks i+1..window_end when i is dropped.
            drop_probs = self._window_probs(prefix, entries, i, window_end,
                                            skip=i)

            keep_score = sum(kept_probs)          # Σ_{n=i}^{i+η} p_{nj}
            drop_score = sum(drop_probs[1:])      # Σ_{n=i+1}^{i+η} p^{(i)}_{nj}

            if drop_score > self.beta * keep_score:
                dropped.append(i)
                # prefix unchanged: task i vanishes from the chain.
            else:
                prefix = completion_pmf(prefix, entries[i].exec_pmf,
                                        entries[i].deadline, self.prune_eps)

        robustness_after = self._queue_robustness(
            view.base_pmf, [e for k, e in enumerate(entries) if k not in set(dropped)])
        return DropDecision(drop_indices=dropped,
                            robustness_before=robustness_before,
                            robustness_after=robustness_after)

    # ------------------------------------------------------------------
    def _window_probs(self, prefix: PMF, entries: List[QueueEntry], start: int,
                      end: int, skip: int | None) -> List[float]:
        """Chances of success of positions ``start..end`` given ``prefix``.

        ``skip`` marks a position that is provisionally dropped; its chance
        of success is recorded as ``0.0`` and it does not contribute to the
        completion chain of the tasks behind it.
        """
        probs: List[float] = []
        prev = prefix
        for n in range(start, end + 1):
            entry = entries[n]
            if skip is not None and n == skip:
                probs.append(0.0)
                continue
            prev = completion_pmf(prev, entry.exec_pmf, entry.deadline, self.prune_eps)
            probs.append(chance_of_success(prev, entry.deadline))
        return probs

    def _queue_robustness(self, base: PMF, entries: List[QueueEntry]) -> float:
        """Instantaneous robustness of a full queue (for reporting)."""
        prev = base
        total = 0.0
        for entry in entries:
            prev = completion_pmf(prev, entry.exec_pmf, entry.deadline, self.prune_eps)
            total += chance_of_success(prev, entry.deadline)
        return total
