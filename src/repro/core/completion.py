"""Completion-time propagation along a machine queue.

These functions implement Equations 1, 4 and 5 of the paper: the completion
time PMF of a pending task is obtained by convolving its execution time PMF
with the completion time PMF of the task ahead of it, *truncated at the
task's own deadline*.  The truncation encodes reactive dropping inside the
probabilistic model: in the branch where the previous task finishes after the
pending task's deadline, the pending task is (will be) reactively dropped, so
its "execution time" is zero and the completion time of the queue position
equals the completion time of the previous task.

Batched fold kernel
-------------------
:class:`ChainFolder` is the hot-loop variant of :func:`completion_pmf`: it
folds whole Eq. 1 chains with

* a **preallocated scratch buffer** for the mixture/prune stage, grown
  geometrically and reused across folds instead of allocating one output
  array per step (only the chain's *published* tail PMFs are materialised;
  intermediates live in scratch), and
* an **identity-keyed fold memo**: PMFs are hash-consed
  (:mod:`repro.core.pmf`), so a ``(prev, exec, deadline)`` triple seen before
  is answered with the previously interned result without touching NumPy.

Both paths perform bit-for-bit the arithmetic of :func:`completion_pmf`
(same operands, same order), so folded chains are exactly reproducible by
the naive composed form -- the property pinned by the simulator's
equivalence tests.  A folder can be installed process-wide with
:func:`active_folder`; while installed, plain :func:`completion_pmf` calls
(e.g. from dropping policies) are routed through it.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .pmf import PMF, _convolve_full, _intern_get, interning_enabled

#: Import-time snapshot of the hash-consing switch (``REPRO_NO_INTERN``).
_INTERNING = interning_enabled()

__all__ = [
    "QueueEntry",
    "ChainFolder",
    "active_folder",
    "completion_pmf",
    "fold_chain",
    "batched_append_scores",
    "queue_completion_pmfs",
    "queue_completion_with_drops",
    "chance_of_success",
    "NUMERICS_PROFILES",
    "FAST_FOLD_SUP_NORM_TOL",
]

#: Recognised numerics profiles; ``exact`` reproduces the naive arithmetic
#: bit-for-bit, ``fast`` trades float ordering for batched FFT folds and
#: closed-form chance-of-success scores.
NUMERICS_PROFILES = ("exact", "fast")

#: Documented per-PMF sup-norm bound of the ``fast`` profile against
#: ``exact``: every probability of an FFT-batched fold result (and every
#: closed-form chance score) differs from the exact value by at most this
#: much.  Real-valued FFT round-trips of sub-probability operands are
#: accurate to ~1e-15 absolute per bin and the batched kernel renormalises
#: each row to the exact product mass, so the bound leaves several orders
#: of magnitude of headroom for long chains; it is pinned by the fast
#: equivalence grid in ``tests/core`` and ``tests/sim``.
FAST_FOLD_SUP_NORM_TOL = 1e-9


@dataclass(frozen=True)
class QueueEntry:
    """Scheduler view of one pending task in a machine queue.

    Attributes
    ----------
    task_id:
        Identifier of the task (opaque to the probabilistic core).
    exec_pmf:
        Execution-time PMF of the task on the machine owning the queue
        (a PET matrix entry).
    deadline:
        Absolute hard deadline of the task, in time units.
    """

    task_id: int
    exec_pmf: PMF
    deadline: int

    def __post_init__(self):
        if self.exec_pmf.is_empty:
            raise ValueError("queue entry requires a non-empty execution PMF")


class _Scratch:
    """Grow-only float64 buffer reused for fold mixtures."""

    __slots__ = ("buf",)

    def __init__(self, initial: int = 256):
        self.buf = np.empty(int(initial), dtype=np.float64)

    def zeros(self, n: int) -> Tuple[np.ndarray, bool]:
        """Zero-filled view of length ``n``; True when no allocation happened."""
        reused = self.buf.size >= n
        if not reused:
            self.buf = np.empty(max(n, 2 * self.buf.size), dtype=np.float64)
        view = self.buf[:n]
        view.fill(0.0)
        return view, reused


def _fold(prev_completion: PMF, exec_pmf: PMF, deadline: int,
          prune_eps: float, folder: Optional["ChainFolder"]) -> PMF:
    """One Eq. 1 fold; the single implementation behind both public paths.

    With ``folder`` the mixture/prune stage runs in the folder's scratch
    buffer and the result is interned straight off the scratch view (copying
    out only on an intern miss); without it every step allocates its own
    output array, exactly as the pre-batched kernel did.  The arithmetic --
    operand trimming, convolution, mixture addition and pruning -- is
    identical in both modes, so results are bit-for-bit the same.
    """
    pp = prev_completion.probs
    po = prev_completion.origin
    k = int(deadline) - po
    if prev_completion.is_empty or k <= 0:
        # The predecessor can never finish before the deadline: the task is
        # certain to be reactively dropped and the chain passes through
        # unchanged.
        return prev_completion.pruned(prune_eps)
    if exec_pmf.is_empty:
        return prev_completion.split_at(deadline)[1].pruned(prune_eps)
    ep = exec_pmf.probs
    eo = exec_pmf.origin
    ep_rev = folder._reversed(exec_pmf) if folder is not None else None
    if k >= pp.size:
        # Everything starts on time: a plain convolution.
        out = _convolve_full(pp, ep, ep_rev)
        out[out < prune_eps] = 0.0
        return PMF._trusted(po + eo, out)
    # ``pp[:k]`` starts on time; its tail may hold interior zeros that a
    # split would have trimmed, and the convolution operand must match that
    # trimmed array exactly for bitwise reproducibility.  (``pp[0]`` is
    # always nonzero -- PMFs are stored trimmed -- so the slice is never
    # all-zero.)
    on_time = pp[:k]
    if on_time[k - 1] == 0.0:
        nz = on_time.nonzero()[0]
        on_time = on_time[:int(nz[-1]) + 1]
    conv = _convolve_full(on_time, ep, ep_rev)
    conv_origin = po + eo
    drop_origin = po + k
    lo = min(conv_origin, drop_origin)
    hi = max(conv_origin + conv.size, po + pp.size)
    # The scratch buffer only pays for itself when the intern probe on the
    # result has a real chance of hitting (the hit skips the copy-out); with
    # probing off -- disabled, or adaptively abandoned -- allocating an
    # owned output array outright is strictly cheaper.
    use_scratch = folder is not None and folder._probe_interns
    if use_scratch:
        out, reused = folder._scratch.zeros(hi - lo)
        if reused:
            folder.scratch_reuses += 1
    else:
        out = np.zeros(hi - lo, dtype=np.float64)
    out[conv_origin - lo:conv_origin - lo + conv.size] += conv
    out[drop_origin - lo:drop_origin - lo + pp.size - k] += pp[k:]
    out[out < prune_eps] = 0.0
    if not use_scratch:
        return PMF._trusted(lo, out)
    # Scratch-backed result: trim in place, probe the intern table with the
    # scratch view, and only copy the array out on an intern miss (the
    # published tail must own its storage; scratch is reused next fold).
    if out[0] != 0.0 and out[-1] != 0.0:
        view = out
        origin = lo
    else:
        nz = out.nonzero()[0]
        if nz.size == 0:
            return PMF.empty()
        t0 = int(nz[0])
        view = out[t0:int(nz[-1]) + 1]
        origin = lo + t0
    return folder._publish(origin, view)


class ChainFolder:
    """Batched Eq. 1 fold kernel with scratch reuse and an identity memo.

    One folder serves one simulation run (one ``prune_eps``).  The memo maps
    ``(id(prev), id(exec), deadline)`` to the interned fold result; entries
    keep strong references to their key PMFs so the ids stay valid, and the
    validated identity check makes a stale-id collision impossible.  Because
    PMFs are hash-consed, semantically repeated folds -- the dropping
    heuristic re-walking a queue, machines of the same type evaluating the
    same candidate task, an unchanged queue revisited at a later event --
    collapse into dictionary hits.

    ``numerics`` selects the score-plane arithmetic profile.  Under the
    default ``"exact"`` every fold is bit-identical to the naive composed
    form.  Under ``"fast"`` the scoring entry points gain two
    float-order-breaking backends -- :meth:`append_chance` (closed-form
    chance of success as a dot product against a cached execution CDF) and
    :meth:`fold_batch` (same-plan Eq. 1 folds through one batched real
    FFT) -- both bounded against exact by
    :data:`FAST_FOLD_SUP_NORM_TOL`.  :meth:`fold` itself always stays
    exact, so committed queue tails are unchanged; only scores consumed by
    mapping selection use the fast paths.
    """

    __slots__ = ("prune_eps", "memo_limit", "memo_hits", "scratch_reuses",
                 "numerics",
                 "_memo", "_scratch", "_rev", "_chance_memo", "_mean_memo",
                 "_probe_interns", "_pub_probes", "_pub_hits",
                 "_memo_active", "_memo_probes",
                 "_cdf", "_rfft", "_append_chance_memo", "_fft_memo",
                 "_moments", "_prev_cums", "_append_mean_memo")

    #: Publication probes before the adaptive intern gate is evaluated.
    PROBE_WINDOW = 2048
    #: Minimum publication hit rate for interning to keep paying its way.
    PROBE_MIN_HIT_RATE = 0.05
    #: Fold probes before the adaptive memo gate is evaluated.
    MEMO_WINDOW = 4096
    #: Minimum fold-memo hit rate below which storing entries stops paying
    #: (a hit saves roughly a convolution, a store costs an entry and GC
    #: pressure; break-even sits near one hit per ten misses).
    MEMO_MIN_HIT_RATE = 0.10

    def __init__(self, prune_eps: float = 1e-12, memo_limit: int = 1 << 13,
                 intern_publications: bool = True, numerics: str = "exact"):
        if numerics not in NUMERICS_PROFILES:
            raise ValueError(f"unknown numerics profile {numerics!r}; "
                             f"expected one of {NUMERICS_PROFILES}")
        self.prune_eps = float(prune_eps)
        self.memo_limit = int(memo_limit)
        self.numerics = numerics
        self.memo_hits = 0
        self.scratch_reuses = 0
        self._memo: Dict[Tuple[int, int, int], Tuple[PMF, PMF, PMF]] = {}
        self._scratch = _Scratch()
        #: id(exec_pmf) -> (exec_pmf, reversed probs); execution-time PMFs
        #: are the small, endlessly reused convolution operands (PET matrix
        #: entries), so their reversed copies are built once per run.
        self._rev: Dict[int, Tuple[PMF, np.ndarray]] = {}
        #: (id(pmf), deadline) -> (pmf, mass_before(deadline)); the dropping
        #: heuristic queries the same chance of success for the same chain
        #: PMF many times while re-walking influence zones.
        self._chance_memo: Dict[Tuple[int, int], Tuple[PMF, float]] = {}
        #: id(pmf) -> (pmf, mean); the mapping score plane asks for the
        #: expected completion of the same (memoised, identity-stable)
        #: appended PMFs over and over across machines and rounds.
        self._mean_memo: Dict[int, Tuple[PMF, float]] = {}
        self._probe_interns = bool(intern_publications) and _INTERNING
        self._pub_probes = 0
        self._pub_hits = 0
        self._memo_active = True
        self._memo_probes = 0
        #: id(exec_pmf) -> (exec_pmf, prefix-sum CDF); ``cdf[j]`` is the mass
        #: of ``exec_pmf`` strictly below ``origin + j`` (length m+1, with
        #: ``cdf[0] == 0``).  Execution PMFs are interned PET entries, so one
        #: prefix sum per (task type, machine type) pair serves every
        #: closed-form chance query of the run.
        self._cdf: Dict[int, Tuple[PMF, np.ndarray]] = {}
        #: (id(exec_pmf), plan length) -> (exec_pmf, rfft); the frequency-
        #: domain image of an execution PMF under a given padded FFT plan.
        self._rfft: Dict[Tuple[int, int], Tuple[PMF, np.ndarray]] = {}
        #: (id(prev), id(exec), deadline) -> (prev, exec, chance); the
        #: closed-form counterpart of ``_chance_memo`` for appended scores.
        self._append_chance_memo: Dict[Tuple[int, int, int],
                                       Tuple[PMF, PMF, float]] = {}
        #: FFT-batched fold results, keyed like ``_memo`` but kept separate
        #: so the exact fold memo never serves FFT-rounded values (the
        #: commit path must stay bit-identical to naive even under the
        #: ``fast`` profile).
        self._fft_memo: Dict[Tuple[int, int, int], Tuple[PMF, PMF, PMF]] = {}
        #: id(exec_pmf) -> (exec_pmf, total mass, first moment); per-exec
        #: scalars of the closed-form mean.
        self._moments: Dict[int, Tuple[PMF, float, float]] = {}
        #: id(prev) -> (prev, prefix masses, prefix first moments); both
        #: arrays length n+1, so a deadline split of ``prev`` costs one
        #: index each.
        self._prev_cums: Dict[int, Tuple[PMF, np.ndarray, np.ndarray]] = {}
        #: (id(prev), id(exec), deadline) -> (prev, exec, mean); the
        #: closed-form counterpart of ``_mean_memo`` for appended scores.
        self._append_mean_memo: Dict[Tuple[int, int, int],
                                     Tuple[PMF, PMF, float]] = {}

    def _publish(self, origin: int, view: np.ndarray) -> PMF:
        """Materialise a fold result off the scratch buffer.

        While publication interning is on, the intern table is probed with
        the scratch view first: a hit returns the canonical PMF without any
        copy.  Interning is *adaptive* -- workloads whose fold results
        rarely recur (distinct deadlines everywhere) would pay table and
        weakref bookkeeping for nothing, so after :data:`PROBE_WINDOW`
        publications with a hit rate below :data:`PROBE_MIN_HIT_RATE` the
        folder stops probing and publishes plain transient PMFs.
        """
        if self._probe_interns:
            data = view.tobytes()
            hit = _intern_get(origin, data)
            self._pub_probes += 1
            if hit is not None:
                self._pub_hits += 1
                return hit
            if (self._pub_probes >= self.PROBE_WINDOW
                    and self._pub_hits < self._pub_probes * self.PROBE_MIN_HIT_RATE):
                self._probe_interns = False
            return PMF._from_trimmed(origin, view.copy(), data)
        arr = view.copy()
        arr.setflags(write=False)
        return PMF._fresh(origin, arr)

    def _reversed(self, exec_pmf: PMF) -> np.ndarray:
        """Reversed probability array of ``exec_pmf``, cached by identity."""
        key = id(exec_pmf)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._rev.get(key)
        if hit is not None and hit[0] is exec_pmf:
            return hit[1]
        rev = exec_pmf.probs[::-1]
        self._rev[key] = (exec_pmf, rev)
        return rev

    # ------------------------------------------------------------------
    def fold(self, prev: PMF, exec_pmf: PMF, deadline: int) -> PMF:
        """Memoised, scratch-backed equivalent of :func:`completion_pmf`.

        The memo is adaptive like publication interning: workloads whose
        folds rarely repeat (no proactive dropper re-walking queues) would
        pay an entry allocation per fold for nothing, so once the hit rate
        over :data:`MEMO_WINDOW` probes falls below
        :data:`MEMO_MIN_HIT_RATE` the folder stops storing and folds
        straight through.
        """
        deadline = int(deadline)
        if not self._memo_active:
            return _fold(prev, exec_pmf, deadline, self.prune_eps, self)
        # The fold only reads the deadline through ``k = deadline - origin``
        # clamped to the predecessor's support: every deadline at or beyond
        # the support end produces the *same* plain convolution, and every
        # deadline at or before the origin the same pass-through.  Clamping
        # the memo key unifies those entries, so e.g. same-type candidates
        # whose (distinct) deadlines all clear the queue tail share one
        # memoised fold.
        key_deadline = deadline
        if not prev.is_empty:
            origin = prev.origin
            if deadline <= origin:
                key_deadline = origin
            else:
                support_end = origin + prev.probs.size
                if deadline >= support_end:
                    key_deadline = support_end
        else:
            key_deadline = 0
        key = (id(prev), id(exec_pmf), key_deadline)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._memo.get(key)
        if hit is not None and hit[0] is prev and hit[1] is exec_pmf:
            self.memo_hits += 1
            return hit[2]
        self._memo_probes += 1
        if (self._memo_probes >= self.MEMO_WINDOW
                and self.memo_hits < self._memo_probes * self.MEMO_MIN_HIT_RATE):
            self._memo_active = False
            self._memo.clear()
            return _fold(prev, exec_pmf, deadline, self.prune_eps, self)
        result = _fold(prev, exec_pmf, deadline, self.prune_eps, self)
        if len(self._memo) >= self.memo_limit:
            self._evict_oldest(self._memo)
        self._memo[key] = (prev, exec_pmf, result)
        return result

    def _evict_oldest(self, memo: Dict) -> None:
        """Drop the oldest quarter of ``memo`` (dicts keep insertion order)."""
        for old in list(itertools.islice(iter(memo),
                                         max(1, self.memo_limit // 4))):
            del memo[old]

    def chance(self, pmf: PMF, deadline: int) -> float:
        """Memoised ``pmf.mass_before(deadline)`` (Eq. 2) for stable PMFs."""
        key = (id(pmf), deadline)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._chance_memo.get(key)
        if hit is not None and hit[0] is pmf:
            return hit[1]
        value = pmf.mass_before(deadline)
        if len(self._chance_memo) >= self.memo_limit:
            self._evict_oldest(self._chance_memo)
        self._chance_memo[key] = (pmf, value)
        return value

    def mean(self, pmf: PMF) -> float:
        """Memoised ``pmf.mean()`` for identity-stable chain PMFs."""
        key = id(pmf)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._mean_memo.get(key)
        if hit is not None and hit[0] is pmf:
            return hit[1]
        value = pmf.mean()
        if len(self._mean_memo) >= self.memo_limit:
            self._evict_oldest(self._mean_memo)
        self._mean_memo[key] = (pmf, value)
        return value

    def fold_chain(self, base: PMF, entries: Sequence[QueueEntry]) -> List[PMF]:
        """Fold a whole queue; ``result[k]`` completes ``entries[k]``."""
        result: List[PMF] = []
        prev = base
        for entry in entries:
            prev = self.fold(prev, entry.exec_pmf, entry.deadline)
            result.append(prev)
        return result

    # ------------------------------------------------------------------
    # Fast-numerics backend (``numerics="fast"``)
    # ------------------------------------------------------------------
    def _exec_cdf(self, exec_pmf: PMF) -> np.ndarray:
        """Prefix-sum CDF of ``exec_pmf``: ``cdf[j] = P(exec < origin + j)``.

        Length ``m + 1`` with ``cdf[0] == 0`` and ``cdf[m]`` the total mass;
        cached by identity like the reversed operands -- execution PMFs are
        interned PET entries, so one prefix sum per (task type, machine
        type) pair serves every closed-form chance query of the run.
        """
        key = id(exec_pmf)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._cdf.get(key)
        if hit is not None and hit[0] is exec_pmf:
            return hit[1]
        ep = exec_pmf.probs
        cdf = np.empty(ep.size + 1, dtype=np.float64)
        cdf[0] = 0.0
        np.cumsum(ep, out=cdf[1:])
        cdf.setflags(write=False)
        self._cdf[key] = (exec_pmf, cdf)
        return cdf

    def append_chance(self, prev: PMF, exec_pmf: PMF, deadline: int) -> float:
        """Closed-form chance of success of one Eq. 1 append (fast profile).

        Equals ``fold(prev, exec, d).mass_before(d)`` without materialising
        the convolution: the reactive-drop branch of Eq. 1 lives at or
        after the deadline, so only the on-time branch contributes, and its
        mass strictly below ``d`` is the dot product of the on-time slice
        of ``prev`` with the execution CDF evaluated at ``d - t`` -- an
        index gather into the cached prefix sum, clamped at the support
        ends.  Differs from the exact value only by the skipped pruning and
        float summation order, within :data:`FAST_FOLD_SUP_NORM_TOL`.
        """
        deadline = int(deadline)
        key = (id(prev), id(exec_pmf), deadline)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._append_chance_memo.get(key)
        if hit is not None and hit[0] is prev and hit[1] is exec_pmf:
            return hit[2]
        if prev.is_empty or exec_pmf.is_empty:
            return 0.0
        po = prev.origin
        k = deadline - po
        if k <= 0:
            return 0.0
        pp = prev.probs
        if k > pp.size:
            k = pp.size
        cdf = self._exec_cdf(exec_pmf)
        idx = (deadline - po - exec_pmf.origin) - np.arange(k)
        np.clip(idx, 0, cdf.size - 1, out=idx)
        value = float(np.dot(pp[:k], cdf[idx]))
        if len(self._append_chance_memo) >= self.memo_limit:
            self._evict_oldest(self._append_chance_memo)
        self._append_chance_memo[key] = (prev, exec_pmf, value)
        return value

    def _exec_moments(self, exec_pmf: PMF) -> Tuple[float, float]:
        """``(total mass, first moment)`` of ``exec_pmf``, cached by identity."""
        key = id(exec_pmf)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._moments.get(key)
        if hit is not None and hit[0] is exec_pmf:
            return hit[1], hit[2]
        ep = exec_pmf.probs
        mass = float(ep.sum())
        moment = float(exec_pmf.origin * mass
                       + np.dot(np.arange(ep.size, dtype=np.float64), ep))
        self._moments[key] = (exec_pmf, mass, moment)
        return mass, moment

    def _prev_prefix(self, prev: PMF) -> Tuple[np.ndarray, np.ndarray]:
        """Prefix masses and first moments of ``prev``, cached by identity.

        ``masses[k]`` is the mass of ``prev.probs[:k]``; ``moments[k]`` the
        first moment (absolute times) of that slice.  One pair of cumsums
        per tail PMF turns every deadline split of the closed-form mean
        into two index reads.
        """
        key = id(prev)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._prev_cums.get(key)
        if hit is not None and hit[0] is prev:
            return hit[1], hit[2]
        pp = prev.probs
        masses = np.empty(pp.size + 1, dtype=np.float64)
        masses[0] = 0.0
        np.cumsum(pp, out=masses[1:])
        times = prev.origin + np.arange(pp.size, dtype=np.float64)
        moments = np.empty(pp.size + 1, dtype=np.float64)
        moments[0] = 0.0
        np.cumsum(times * pp, out=moments[1:])
        masses.setflags(write=False)
        moments.setflags(write=False)
        if len(self._prev_cums) >= self.memo_limit:
            self._evict_oldest(self._prev_cums)
        self._prev_cums[key] = (prev, masses, moments)
        return masses, moments

    def append_mean(self, prev: PMF, exec_pmf: PMF, deadline: int) -> float:
        """Closed-form expected completion of one Eq. 1 append (fast profile).

        Equals ``fold(prev, exec, d).mean()`` without materialising the
        convolution: the first moment of a convolution is
        ``S_a * M_e + M_a * S_e`` (mass/moment of the on-time slice times
        mass/moment of the execution PMF), and the reactive-drop branch
        keeps its original times, so its moment is the complementary
        prefix-sum tail.  Differs from the exact value only by the skipped
        pruning and float summation order, within
        :data:`FAST_FOLD_SUP_NORM_TOL` per bin.

        Raises ``ValueError`` on an empty result, exactly like
        :meth:`PMF.mean` on the exact fold.
        """
        deadline = int(deadline)
        key = (id(prev), id(exec_pmf), deadline)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._append_mean_memo.get(key)
        if hit is not None and hit[0] is prev and hit[1] is exec_pmf:
            return hit[2]
        if prev.is_empty:
            raise ValueError("mean of an empty PMF is undefined")
        pp = prev.probs
        k = deadline - prev.origin
        if k <= 0:
            # Nothing fits before the deadline: the fold degenerates to
            # ``prev`` itself (everything re-queues behind the drop branch).
            return self.mean(prev)
        if k > pp.size:
            k = pp.size
        masses, moments = self._prev_prefix(prev)
        on_mass = float(masses[k])
        on_moment = float(moments[k])
        drop_mass = float(masses[-1]) - on_mass
        drop_moment = float(moments[-1]) - on_moment
        if exec_pmf.is_empty:
            total_mass = drop_mass
            total_moment = drop_moment
        else:
            e_mass, e_moment = self._exec_moments(exec_pmf)
            total_mass = on_mass * e_mass + drop_mass
            total_moment = (on_moment * e_mass + on_mass * e_moment
                            + drop_moment)
        if total_mass <= 0.0:
            raise ValueError("mean of an empty PMF is undefined")
        value = total_moment / total_mass
        if len(self._append_mean_memo) >= self.memo_limit:
            self._evict_oldest(self._append_mean_memo)
        self._append_mean_memo[key] = (prev, exec_pmf, value)
        return value

    def _exec_rfft(self, exec_pmf: PMF, plan: int) -> np.ndarray:
        """``rfft`` of ``exec_pmf`` zero-padded to ``plan``, cached by identity."""
        key = (id(exec_pmf), plan)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._rfft.get(key)
        if hit is not None and hit[0] is exec_pmf:
            return hit[1]
        spec = np.fft.rfft(exec_pmf.probs, n=plan)
        self._rfft[key] = (exec_pmf, spec)
        return spec

    def _mix(self, conv: np.ndarray, prev: PMF, exec_pmf: PMF, k: int) -> PMF:
        """Mixture/prune stage shared by the fast fold paths.

        ``conv`` is the *owned* on-time convolution array; mirroring the
        exact kernel, the reactive-drop branch ``prev[k:]`` is added at its
        own origin, mass below ``prune_eps`` is zeroed, and the result is
        published as a trimmed transient PMF.
        """
        pp = prev.probs
        po = prev.origin
        conv_origin = po + exec_pmf.origin
        if k >= pp.size:
            out = conv
            lo = conv_origin
        else:
            drop_origin = po + k
            lo = min(conv_origin, drop_origin)
            hi = max(conv_origin + conv.size, po + pp.size)
            out = np.zeros(hi - lo, dtype=np.float64)
            out[conv_origin - lo:conv_origin - lo + conv.size] += conv
            out[drop_origin - lo:drop_origin - lo + pp.size - k] += pp[k:]
        out[out < self.prune_eps] = 0.0
        return PMF._trusted(lo, out)

    def fold_batch(self, prev: PMF, exec_pmfs: Sequence[PMF],
                   deadlines: Sequence[int]) -> List[PMF]:
        """Fold a stack of candidates onto one tail through one FFT plan.

        The ``fast`` counterpart of calling :meth:`fold` per candidate:
        memo hits and degenerate folds (pass-throughs, empty or single-bin
        operands) are answered exactly, and the remaining Eq. 1
        convolutions are grouped into one batched real FFT -- every
        on-time slice zero-padded to a shared power-of-two plan, multiplied
        by the cached frequency-domain image of its execution PMF, and
        inverted in a single ``irfft``.  Each row is then clamped
        non-negative, renormalised to the exact product mass of its
        operands, mixed with its reactive-drop branch and pruned at
        ``prune_eps``, mirroring the exact kernel's mixture stage.  Results
        differ from :meth:`fold` by at most
        :data:`FAST_FOLD_SUP_NORM_TOL` per probability and are memoised
        separately (``_fft_memo``) so the exact fold memo never serves
        FFT-rounded values.
        """
        n = len(exec_pmfs)
        results: List[PMF] = [None] * n  # type: ignore[list-item]
        prune_eps = self.prune_eps
        pp = prev.probs
        po = prev.origin
        support_end = po + pp.size
        pending: List[Tuple[int, Tuple[int, int, int], PMF, int]] = []
        for i in range(n):
            deadline = int(deadlines[i])
            ep_pmf = exec_pmfs[i]
            # Same clamped-deadline key as :meth:`fold`: every deadline at
            # or beyond the tail support is the same plain convolution.
            if prev.is_empty:
                key_deadline = 0
            elif deadline <= po:
                key_deadline = po
            elif deadline >= support_end:
                key_deadline = support_end
            else:
                key_deadline = deadline
            key = (id(prev), id(ep_pmf), key_deadline)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
            hit = self._fft_memo.get(key)
            if hit is not None and hit[0] is prev and hit[1] is ep_pmf:
                self.memo_hits += 1
                results[i] = hit[2]
                continue
            pending.append((i, key, ep_pmf, deadline))
        if not pending:
            return results
        batch: List[Tuple[int, Tuple[int, int, int], PMF, int,
                          np.ndarray, int]] = []
        plan_len = 0
        for i, key, ep_pmf, deadline in pending:
            k = deadline - po
            if prev.is_empty or k <= 0:
                result = prev.pruned(prune_eps)
            elif ep_pmf.is_empty:
                result = prev.split_at(deadline)[1].pruned(prune_eps)
            else:
                on_time = pp[:k] if k < pp.size else pp
                if on_time[-1] == 0.0:
                    nz = on_time.nonzero()[0]
                    on_time = on_time[:int(nz[-1]) + 1]
                ep = ep_pmf.probs
                if ep.size == 1 or on_time.size == 1:
                    # Degenerate single-bin operand: the convolution is a
                    # scaled copy, computed exactly (bit-identical to the
                    # exact kernel's elementwise multiply).
                    conv = on_time * ep[0] if ep.size == 1 else ep * on_time[0]
                    result = self._mix(conv, prev, ep_pmf, k)
                else:
                    conv_len = on_time.size + ep.size - 1
                    if conv_len > plan_len:
                        plan_len = conv_len
                    batch.append((i, key, ep_pmf, k, on_time, conv_len))
                    continue
            results[i] = result
            if len(self._fft_memo) >= self.memo_limit:
                self._evict_oldest(self._fft_memo)
            self._fft_memo[key] = (prev, ep_pmf, result)
        if batch:
            plan = 1 << (plan_len - 1).bit_length()
            rows = np.zeros((len(batch), plan), dtype=np.float64)
            e_masses = np.empty(len(batch), dtype=np.float64)
            for r, (_, _, ep_pmf, _, on_time, _) in enumerate(batch):
                rows[r, :on_time.size] = on_time
                e_masses[r] = ep_pmf.total_mass
            on_masses = rows.sum(axis=1)
            freq = np.fft.rfft(rows, axis=1)
            for r, (_, _, ep_pmf, _, _, _) in enumerate(batch):
                freq[r] *= self._exec_rfft(ep_pmf, plan)
            time_rows = np.fft.irfft(freq, n=plan, axis=1)
            # Clamp, measure and renormalise the whole batch in matrix ops;
            # the padded region past each row's ``conv_len`` holds only
            # clamped round-trip ringing (~1e-17 per bin), so including it
            # in the row mass stays well inside the documented tolerance.
            np.maximum(time_rows, 0.0, out=time_rows)
            masses = time_rows.sum(axis=1)
            targets = on_masses * e_masses
            scales = np.ones(len(batch), dtype=np.float64)
            ok = (masses > 0.0) & (targets > 0.0)
            scales[ok] = targets[ok] / masses[ok]
            time_rows *= scales[:, None]
            for r, (i, key, ep_pmf, k, on_time, conv_len) in enumerate(batch):
                conv = time_rows[r, :conv_len].copy()
                result = self._mix(conv, prev, ep_pmf, k)
                results[i] = result
                if len(self._fft_memo) >= self.memo_limit:
                    self._evict_oldest(self._fft_memo)
                self._fft_memo[key] = (prev, ep_pmf, result)
        return results


#: Folder that plain ``completion_pmf`` calls are currently routed through.
_ACTIVE_FOLDER: Optional[ChainFolder] = None


@contextmanager
def active_folder(folder: Optional[ChainFolder]):
    """Route :func:`completion_pmf` through ``folder`` inside the block.

    The simulator installs its per-run folder around the event loop so that
    fold calls made by code that only sees the public function -- dropping
    policies in particular -- share the run's memo and scratch buffers.
    Passing ``None`` explicitly shields the block from any outer folder
    (used by the naive benchmarking path).
    """
    global _ACTIVE_FOLDER
    outer = _ACTIVE_FOLDER
    _ACTIVE_FOLDER = folder
    try:
        yield folder
    finally:
        _ACTIVE_FOLDER = outer


def completion_pmf(prev_completion: PMF, exec_pmf: PMF, deadline: int,
                   prune_eps: float = 1e-12) -> PMF:
    """Completion-time PMF of a task queued behind ``prev_completion``.

    Implements Eq. 1 (and its provisional-dropping variants Eq. 4/5): the
    portion of ``prev_completion`` that falls strictly before ``deadline``
    lets the task start, so it is convolved with ``exec_pmf``; the portion at
    or after ``deadline`` corresponds to the task being reactively dropped,
    so it is passed through unchanged.

    Parameters
    ----------
    prev_completion:
        Completion-time PMF of the task (or machine availability) directly
        ahead in the queue.  May be a sub-probability PMF.
    exec_pmf:
        Execution-time PMF of the task being evaluated.
    deadline:
        Absolute deadline ``δ_i`` of the task being evaluated.
    prune_eps:
        Impulses below this mass are discarded from the result to bound the
        support growth of chained convolutions.

    Notes
    -----
    This is the innermost loop of the whole simulator (it runs once per
    pending task per scheduler view), so the split/convolve/mixture/prune
    pipeline is fused into a single output buffer instead of chaining the
    four equivalent :class:`PMF` operations.  When a :class:`ChainFolder`
    with the same ``prune_eps`` is installed via :func:`active_folder`, the
    call is served through its memo and scratch buffers; either way the
    result is bit-identical to the composed form.
    """
    folder = _ACTIVE_FOLDER
    if folder is not None and folder.prune_eps == prune_eps:
        return folder.fold(prev_completion, exec_pmf, deadline)
    return _fold(prev_completion, exec_pmf, int(deadline), prune_eps, None)


def batched_append_scores(prev: PMF, exec_pmfs: Sequence[PMF],
                          deadlines: Sequence[int],
                          prune_eps: float = 1e-12,
                          folder: Optional[ChainFolder] = None,
                          want_mean: bool = True,
                          want_chance: bool = False,
                          want_pmfs: bool = False,
                          ) -> Tuple[List[PMF], Optional[np.ndarray],
                                     Optional[np.ndarray]]:
    """Fold a *stack* of candidates onto one tail and score each of them.

    This is the score-plane kernel behind the vectorised mapping backend
    (:mod:`repro.mapping.kernel`): one call evaluates a whole column of the
    (task x machine) plane -- every candidate task appended to the same
    machine tail -- and writes the requested scalar scores straight into
    NumPy arrays, with none of the per-pair tuple/closure overhead of the
    per-call path.

    Each element performs exactly the arithmetic of
    :func:`completion_pmf` followed by :meth:`PMF.mean` /
    :meth:`PMF.mass_before`, in the same order, so every returned score is
    bit-identical to what the scalar path computes for the same pair.  With
    ``folder`` the folds share the run's memo and scratch buffers.

    Returns ``(pmfs, means, chances)``; ``means`` / ``chances`` are ``None``
    unless requested.

    Under a ``numerics="fast"`` folder the column is served by the fast
    backend instead: chances come from the closed-form
    :meth:`ChainFolder.append_chance` dot product and means from the
    closed-form :meth:`ChainFolder.append_mean` moment algebra -- no
    convolution at all.  Callers that need the appended *distributions*
    (not just scalar scores) pass ``want_pmfs=True`` and receive the
    column through the batched FFT kernel :meth:`ChainFolder.fold_batch`;
    otherwise the returned list holds ``None`` entries.  Callers that need
    the committed PMF go through the exact fold instead (see
    :meth:`repro.mapping.base.MappingContext.completion_if_appended`), so
    fast scores never leak into the simulated trajectory.  ``want_pmfs``
    has no effect on the exact path, which always folds (and returns) the
    column.
    """
    n = len(exec_pmfs)
    if folder is not None and folder.numerics == "fast":
        chances = None
        if want_chance:
            chances = np.empty(n, dtype=np.float64)
            for i in range(n):
                chances[i] = folder.append_chance(prev, exec_pmfs[i],
                                                  int(deadlines[i]))
        means = None
        if want_mean:
            means = np.empty(n, dtype=np.float64)
            for i in range(n):
                means[i] = folder.append_mean(prev, exec_pmfs[i],
                                              int(deadlines[i]))
        if want_pmfs:
            return folder.fold_batch(prev, exec_pmfs, deadlines), \
                means, chances
        return [None] * n, means, chances  # type: ignore[list-item]
    pmfs: List[PMF] = [None] * n  # type: ignore[list-item]
    means = np.empty(n, dtype=np.float64) if want_mean else None
    chances = np.empty(n, dtype=np.float64) if want_chance else None
    for i in range(n):
        deadline = int(deadlines[i])
        if folder is not None:
            pmf = folder.fold(prev, exec_pmfs[i], deadline)
        else:
            pmf = _fold(prev, exec_pmfs[i], deadline, prune_eps, None)
        pmfs[i] = pmf
        if means is not None:
            means[i] = (folder.mean(pmf) if folder is not None
                        else pmf.mean())
        if chances is not None:
            chances[i] = (folder.chance(pmf, deadline) if folder is not None
                          else pmf.mass_before(deadline))
    return pmfs, means, chances


def chance_of_success(completion: PMF, deadline: int) -> float:
    """Probability that a task completes strictly before its deadline (Eq. 2).

    Served from the installed :class:`ChainFolder`'s memo when one is
    active: chain PMFs are identity-stable (memoised folds return the same
    object), so the repeated queries issued by the dropping heuristic while
    re-walking a queue collapse into dictionary hits.
    """
    folder = _ACTIVE_FOLDER
    if folder is not None:
        return folder.chance(completion, int(deadline))
    return completion.mass_before(deadline)


def fold_chain(base: PMF, entries: Sequence[QueueEntry],
               prune_eps: float = 1e-12,
               folder: Optional[ChainFolder] = None) -> List[PMF]:
    """Completion-time PMFs of a queue, optionally through a fold kernel.

    With ``folder`` (whose ``prune_eps`` must match) the chain runs through
    the batched kernel; otherwise each step is a plain
    :func:`completion_pmf` call.  Results are identical either way.
    """
    if folder is not None:
        if folder.prune_eps != prune_eps:
            raise ValueError("folder prune_eps does not match the chain's")
        return folder.fold_chain(base, entries)
    result: List[PMF] = []
    prev = base
    for entry in entries:
        prev = completion_pmf(prev, entry.exec_pmf, entry.deadline, prune_eps)
        result.append(prev)
    return result


def queue_completion_pmfs(base: PMF, entries: Sequence[QueueEntry],
                          prune_eps: float = 1e-12) -> List[PMF]:
    """Completion-time PMFs of every pending task in a machine queue.

    Parameters
    ----------
    base:
        Completion-time PMF of whatever is ahead of the first pending task:
        the currently running task's (conditioned) completion PMF, or a delta
        at the current time for an idle machine.
    entries:
        Pending tasks in queue order (head first).

    Returns
    -------
    list of PMF
        ``result[k]`` is the completion-time PMF of ``entries[k]``.
    """
    return fold_chain(base, entries, prune_eps)


def queue_completion_with_drops(base: PMF, entries: Sequence[QueueEntry],
                                dropped: Sequence[int],
                                prune_eps: float = 1e-12) -> List[Optional[PMF]]:
    """Completion PMFs when a subset of queue positions is provisionally dropped.

    Dropped positions contribute nothing to the chain (their execution time
    vanishes entirely, Eq. 4) and their slot in the returned list is ``None``.

    Parameters
    ----------
    base:
        Completion-time PMF ahead of the first pending task.
    entries:
        Pending tasks in queue order.
    dropped:
        Indices (into ``entries``) of tasks that are provisionally dropped.
    """
    dropped_set = set(int(i) for i in dropped)
    for i in sorted(dropped_set):
        if i < 0 or i >= len(entries):
            raise IndexError(f"drop index {i} out of range for queue of "
                             f"length {len(entries)}")
    result: List[Optional[PMF]] = []
    prev = base
    for idx, entry in enumerate(entries):
        if idx in dropped_set:
            result.append(None)
            continue
        prev = completion_pmf(prev, entry.exec_pmf, entry.deadline, prune_eps)
        result.append(prev)
    return result
