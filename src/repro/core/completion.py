"""Completion-time propagation along a machine queue.

These functions implement Equations 1, 4 and 5 of the paper: the completion
time PMF of a pending task is obtained by convolving its execution time PMF
with the completion time PMF of the task ahead of it, *truncated at the
task's own deadline*.  The truncation encodes reactive dropping inside the
probabilistic model: in the branch where the previous task finishes after the
pending task's deadline, the pending task is (will be) reactively dropped, so
its "execution time" is zero and the completion time of the queue position
equals the completion time of the previous task.

Batched fold kernel
-------------------
:class:`ChainFolder` is the hot-loop variant of :func:`completion_pmf`: it
folds whole Eq. 1 chains with

* a **preallocated scratch buffer** for the mixture/prune stage, grown
  geometrically and reused across folds instead of allocating one output
  array per step (only the chain's *published* tail PMFs are materialised;
  intermediates live in scratch), and
* an **identity-keyed fold memo**: PMFs are hash-consed
  (:mod:`repro.core.pmf`), so a ``(prev, exec, deadline)`` triple seen before
  is answered with the previously interned result without touching NumPy.

Both paths perform bit-for-bit the arithmetic of :func:`completion_pmf`
(same operands, same order), so folded chains are exactly reproducible by
the naive composed form -- the property pinned by the simulator's
equivalence tests.  A folder can be installed process-wide with
:func:`active_folder`; while installed, plain :func:`completion_pmf` calls
(e.g. from dropping policies) are routed through it.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .pmf import PMF, _intern_get, interning_enabled

#: Import-time snapshot of the hash-consing switch (``REPRO_NO_INTERN``).
_INTERNING = interning_enabled()

try:  # pragma: no cover - import resolution depends on the numpy major
    from numpy._core.multiarray import correlate as _correlate  # numpy >= 2
except ImportError:  # pragma: no cover
    try:
        from numpy.core.multiarray import correlate as _correlate  # numpy 1.x
    except ImportError:
        _correlate = None

#: ``multiarray.correlate`` integer code for the 'full' convolution mode.
_FULL_MODE = 2


def _convolve_full(a: np.ndarray, ep: np.ndarray, ep_rev) -> np.ndarray:
    """Exactly ``np.convolve(a, ep)`` minus the Python wrapper overhead.

    ``np.convolve`` swaps its operands so the longer one comes first, then
    calls ``multiarray.correlate(long, short[::-1], 'full')``; this helper
    replicates that dance bit-for-bit while letting the fold kernel pass a
    *pre-reversed* execution-time operand (``ep_rev``), which ``np.convolve``
    would otherwise re-reverse (and re-allocate) on every fold of a chain.
    """
    if _correlate is None:  # pragma: no cover - ancient numpy fallback
        return np.convolve(a, ep)
    if ep.size > a.size:
        return _correlate(ep, a[::-1], _FULL_MODE)
    if ep_rev is None:
        ep_rev = ep[::-1]
    return _correlate(a, ep_rev, _FULL_MODE)

__all__ = [
    "QueueEntry",
    "ChainFolder",
    "active_folder",
    "completion_pmf",
    "fold_chain",
    "batched_append_scores",
    "queue_completion_pmfs",
    "queue_completion_with_drops",
    "chance_of_success",
]


@dataclass(frozen=True)
class QueueEntry:
    """Scheduler view of one pending task in a machine queue.

    Attributes
    ----------
    task_id:
        Identifier of the task (opaque to the probabilistic core).
    exec_pmf:
        Execution-time PMF of the task on the machine owning the queue
        (a PET matrix entry).
    deadline:
        Absolute hard deadline of the task, in time units.
    """

    task_id: int
    exec_pmf: PMF
    deadline: int

    def __post_init__(self):
        if self.exec_pmf.is_empty:
            raise ValueError("queue entry requires a non-empty execution PMF")


class _Scratch:
    """Grow-only float64 buffer reused for fold mixtures."""

    __slots__ = ("buf",)

    def __init__(self, initial: int = 256):
        self.buf = np.empty(int(initial), dtype=np.float64)

    def zeros(self, n: int) -> Tuple[np.ndarray, bool]:
        """Zero-filled view of length ``n``; True when no allocation happened."""
        reused = self.buf.size >= n
        if not reused:
            self.buf = np.empty(max(n, 2 * self.buf.size), dtype=np.float64)
        view = self.buf[:n]
        view.fill(0.0)
        return view, reused


def _fold(prev_completion: PMF, exec_pmf: PMF, deadline: int,
          prune_eps: float, folder: Optional["ChainFolder"]) -> PMF:
    """One Eq. 1 fold; the single implementation behind both public paths.

    With ``folder`` the mixture/prune stage runs in the folder's scratch
    buffer and the result is interned straight off the scratch view (copying
    out only on an intern miss); without it every step allocates its own
    output array, exactly as the pre-batched kernel did.  The arithmetic --
    operand trimming, convolution, mixture addition and pruning -- is
    identical in both modes, so results are bit-for-bit the same.
    """
    pp = prev_completion.probs
    po = prev_completion.origin
    k = int(deadline) - po
    if prev_completion.is_empty or k <= 0:
        # The predecessor can never finish before the deadline: the task is
        # certain to be reactively dropped and the chain passes through
        # unchanged.
        return prev_completion.pruned(prune_eps)
    if exec_pmf.is_empty:
        return prev_completion.split_at(deadline)[1].pruned(prune_eps)
    ep = exec_pmf.probs
    eo = exec_pmf.origin
    ep_rev = folder._reversed(exec_pmf) if folder is not None else None
    if k >= pp.size:
        # Everything starts on time: a plain convolution.
        out = _convolve_full(pp, ep, ep_rev)
        out[out < prune_eps] = 0.0
        return PMF._trusted(po + eo, out)
    # ``pp[:k]`` starts on time; its tail may hold interior zeros that a
    # split would have trimmed, and the convolution operand must match that
    # trimmed array exactly for bitwise reproducibility.  (``pp[0]`` is
    # always nonzero -- PMFs are stored trimmed -- so the slice is never
    # all-zero.)
    on_time = pp[:k]
    if on_time[k - 1] == 0.0:
        nz = on_time.nonzero()[0]
        on_time = on_time[:int(nz[-1]) + 1]
    conv = _convolve_full(on_time, ep, ep_rev)
    conv_origin = po + eo
    drop_origin = po + k
    lo = min(conv_origin, drop_origin)
    hi = max(conv_origin + conv.size, po + pp.size)
    # The scratch buffer only pays for itself when the intern probe on the
    # result has a real chance of hitting (the hit skips the copy-out); with
    # probing off -- disabled, or adaptively abandoned -- allocating an
    # owned output array outright is strictly cheaper.
    use_scratch = folder is not None and folder._probe_interns
    if use_scratch:
        out, reused = folder._scratch.zeros(hi - lo)
        if reused:
            folder.scratch_reuses += 1
    else:
        out = np.zeros(hi - lo, dtype=np.float64)
    out[conv_origin - lo:conv_origin - lo + conv.size] += conv
    out[drop_origin - lo:drop_origin - lo + pp.size - k] += pp[k:]
    out[out < prune_eps] = 0.0
    if not use_scratch:
        return PMF._trusted(lo, out)
    # Scratch-backed result: trim in place, probe the intern table with the
    # scratch view, and only copy the array out on an intern miss (the
    # published tail must own its storage; scratch is reused next fold).
    if out[0] != 0.0 and out[-1] != 0.0:
        view = out
        origin = lo
    else:
        nz = out.nonzero()[0]
        if nz.size == 0:
            return PMF.empty()
        t0 = int(nz[0])
        view = out[t0:int(nz[-1]) + 1]
        origin = lo + t0
    return folder._publish(origin, view)


class ChainFolder:
    """Batched Eq. 1 fold kernel with scratch reuse and an identity memo.

    One folder serves one simulation run (one ``prune_eps``).  The memo maps
    ``(id(prev), id(exec), deadline)`` to the interned fold result; entries
    keep strong references to their key PMFs so the ids stay valid, and the
    validated identity check makes a stale-id collision impossible.  Because
    PMFs are hash-consed, semantically repeated folds -- the dropping
    heuristic re-walking a queue, machines of the same type evaluating the
    same candidate task, an unchanged queue revisited at a later event --
    collapse into dictionary hits.
    """

    __slots__ = ("prune_eps", "memo_limit", "memo_hits", "scratch_reuses",
                 "_memo", "_scratch", "_rev", "_chance_memo", "_mean_memo",
                 "_probe_interns", "_pub_probes", "_pub_hits",
                 "_memo_active", "_memo_probes")

    #: Publication probes before the adaptive intern gate is evaluated.
    PROBE_WINDOW = 2048
    #: Minimum publication hit rate for interning to keep paying its way.
    PROBE_MIN_HIT_RATE = 0.05
    #: Fold probes before the adaptive memo gate is evaluated.
    MEMO_WINDOW = 4096
    #: Minimum fold-memo hit rate below which storing entries stops paying
    #: (a hit saves roughly a convolution, a store costs an entry and GC
    #: pressure; break-even sits near one hit per ten misses).
    MEMO_MIN_HIT_RATE = 0.10

    def __init__(self, prune_eps: float = 1e-12, memo_limit: int = 1 << 13,
                 intern_publications: bool = True):
        self.prune_eps = float(prune_eps)
        self.memo_limit = int(memo_limit)
        self.memo_hits = 0
        self.scratch_reuses = 0
        self._memo: Dict[Tuple[int, int, int], Tuple[PMF, PMF, PMF]] = {}
        self._scratch = _Scratch()
        #: id(exec_pmf) -> (exec_pmf, reversed probs); execution-time PMFs
        #: are the small, endlessly reused convolution operands (PET matrix
        #: entries), so their reversed copies are built once per run.
        self._rev: Dict[int, Tuple[PMF, np.ndarray]] = {}
        #: (id(pmf), deadline) -> (pmf, mass_before(deadline)); the dropping
        #: heuristic queries the same chance of success for the same chain
        #: PMF many times while re-walking influence zones.
        self._chance_memo: Dict[Tuple[int, int], Tuple[PMF, float]] = {}
        #: id(pmf) -> (pmf, mean); the mapping score plane asks for the
        #: expected completion of the same (memoised, identity-stable)
        #: appended PMFs over and over across machines and rounds.
        self._mean_memo: Dict[int, Tuple[PMF, float]] = {}
        self._probe_interns = bool(intern_publications) and _INTERNING
        self._pub_probes = 0
        self._pub_hits = 0
        self._memo_active = True
        self._memo_probes = 0

    def _publish(self, origin: int, view: np.ndarray) -> PMF:
        """Materialise a fold result off the scratch buffer.

        While publication interning is on, the intern table is probed with
        the scratch view first: a hit returns the canonical PMF without any
        copy.  Interning is *adaptive* -- workloads whose fold results
        rarely recur (distinct deadlines everywhere) would pay table and
        weakref bookkeeping for nothing, so after :data:`PROBE_WINDOW`
        publications with a hit rate below :data:`PROBE_MIN_HIT_RATE` the
        folder stops probing and publishes plain transient PMFs.
        """
        if self._probe_interns:
            data = view.tobytes()
            hit = _intern_get(origin, data)
            self._pub_probes += 1
            if hit is not None:
                self._pub_hits += 1
                return hit
            if (self._pub_probes >= self.PROBE_WINDOW
                    and self._pub_hits < self._pub_probes * self.PROBE_MIN_HIT_RATE):
                self._probe_interns = False
            return PMF._from_trimmed(origin, view.copy(), data)
        arr = view.copy()
        arr.setflags(write=False)
        return PMF._fresh(origin, arr)

    def _reversed(self, exec_pmf: PMF) -> np.ndarray:
        """Reversed probability array of ``exec_pmf``, cached by identity."""
        key = id(exec_pmf)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._rev.get(key)
        if hit is not None and hit[0] is exec_pmf:
            return hit[1]
        rev = exec_pmf.probs[::-1]
        self._rev[key] = (exec_pmf, rev)
        return rev

    # ------------------------------------------------------------------
    def fold(self, prev: PMF, exec_pmf: PMF, deadline: int) -> PMF:
        """Memoised, scratch-backed equivalent of :func:`completion_pmf`.

        The memo is adaptive like publication interning: workloads whose
        folds rarely repeat (no proactive dropper re-walking queues) would
        pay an entry allocation per fold for nothing, so once the hit rate
        over :data:`MEMO_WINDOW` probes falls below
        :data:`MEMO_MIN_HIT_RATE` the folder stops storing and folds
        straight through.
        """
        deadline = int(deadline)
        if not self._memo_active:
            return _fold(prev, exec_pmf, deadline, self.prune_eps, self)
        # The fold only reads the deadline through ``k = deadline - origin``
        # clamped to the predecessor's support: every deadline at or beyond
        # the support end produces the *same* plain convolution, and every
        # deadline at or before the origin the same pass-through.  Clamping
        # the memo key unifies those entries, so e.g. same-type candidates
        # whose (distinct) deadlines all clear the queue tail share one
        # memoised fold.
        key_deadline = deadline
        if not prev.is_empty:
            origin = prev.origin
            if deadline <= origin:
                key_deadline = origin
            else:
                support_end = origin + prev.probs.size
                if deadline >= support_end:
                    key_deadline = support_end
        else:
            key_deadline = 0
        key = (id(prev), id(exec_pmf), key_deadline)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._memo.get(key)
        if hit is not None and hit[0] is prev and hit[1] is exec_pmf:
            self.memo_hits += 1
            return hit[2]
        self._memo_probes += 1
        if (self._memo_probes >= self.MEMO_WINDOW
                and self.memo_hits < self._memo_probes * self.MEMO_MIN_HIT_RATE):
            self._memo_active = False
            self._memo.clear()
            return _fold(prev, exec_pmf, deadline, self.prune_eps, self)
        result = _fold(prev, exec_pmf, deadline, self.prune_eps, self)
        if len(self._memo) >= self.memo_limit:
            self._evict_oldest(self._memo)
        self._memo[key] = (prev, exec_pmf, result)
        return result

    def _evict_oldest(self, memo: Dict) -> None:
        """Drop the oldest quarter of ``memo`` (dicts keep insertion order)."""
        for old in list(itertools.islice(iter(memo),
                                         max(1, self.memo_limit // 4))):
            del memo[old]

    def chance(self, pmf: PMF, deadline: int) -> float:
        """Memoised ``pmf.mass_before(deadline)`` (Eq. 2) for stable PMFs."""
        key = (id(pmf), deadline)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._chance_memo.get(key)
        if hit is not None and hit[0] is pmf:
            return hit[1]
        value = pmf.mass_before(deadline)
        if len(self._chance_memo) >= self.memo_limit:
            self._evict_oldest(self._chance_memo)
        self._chance_memo[key] = (pmf, value)
        return value

    def mean(self, pmf: PMF) -> float:
        """Memoised ``pmf.mean()`` for identity-stable chain PMFs."""
        key = id(pmf)  # repro: allow[id-keyed-state] hit re-checks identity, so address reuse misses
        hit = self._mean_memo.get(key)
        if hit is not None and hit[0] is pmf:
            return hit[1]
        value = pmf.mean()
        if len(self._mean_memo) >= self.memo_limit:
            self._evict_oldest(self._mean_memo)
        self._mean_memo[key] = (pmf, value)
        return value

    def fold_chain(self, base: PMF, entries: Sequence[QueueEntry]) -> List[PMF]:
        """Fold a whole queue; ``result[k]`` completes ``entries[k]``."""
        result: List[PMF] = []
        prev = base
        for entry in entries:
            prev = self.fold(prev, entry.exec_pmf, entry.deadline)
            result.append(prev)
        return result


#: Folder that plain ``completion_pmf`` calls are currently routed through.
_ACTIVE_FOLDER: Optional[ChainFolder] = None


@contextmanager
def active_folder(folder: Optional[ChainFolder]):
    """Route :func:`completion_pmf` through ``folder`` inside the block.

    The simulator installs its per-run folder around the event loop so that
    fold calls made by code that only sees the public function -- dropping
    policies in particular -- share the run's memo and scratch buffers.
    Passing ``None`` explicitly shields the block from any outer folder
    (used by the naive benchmarking path).
    """
    global _ACTIVE_FOLDER
    outer = _ACTIVE_FOLDER
    _ACTIVE_FOLDER = folder
    try:
        yield folder
    finally:
        _ACTIVE_FOLDER = outer


def completion_pmf(prev_completion: PMF, exec_pmf: PMF, deadline: int,
                   prune_eps: float = 1e-12) -> PMF:
    """Completion-time PMF of a task queued behind ``prev_completion``.

    Implements Eq. 1 (and its provisional-dropping variants Eq. 4/5): the
    portion of ``prev_completion`` that falls strictly before ``deadline``
    lets the task start, so it is convolved with ``exec_pmf``; the portion at
    or after ``deadline`` corresponds to the task being reactively dropped,
    so it is passed through unchanged.

    Parameters
    ----------
    prev_completion:
        Completion-time PMF of the task (or machine availability) directly
        ahead in the queue.  May be a sub-probability PMF.
    exec_pmf:
        Execution-time PMF of the task being evaluated.
    deadline:
        Absolute deadline ``δ_i`` of the task being evaluated.
    prune_eps:
        Impulses below this mass are discarded from the result to bound the
        support growth of chained convolutions.

    Notes
    -----
    This is the innermost loop of the whole simulator (it runs once per
    pending task per scheduler view), so the split/convolve/mixture/prune
    pipeline is fused into a single output buffer instead of chaining the
    four equivalent :class:`PMF` operations.  When a :class:`ChainFolder`
    with the same ``prune_eps`` is installed via :func:`active_folder`, the
    call is served through its memo and scratch buffers; either way the
    result is bit-identical to the composed form.
    """
    folder = _ACTIVE_FOLDER
    if folder is not None and folder.prune_eps == prune_eps:
        return folder.fold(prev_completion, exec_pmf, deadline)
    return _fold(prev_completion, exec_pmf, int(deadline), prune_eps, None)


def batched_append_scores(prev: PMF, exec_pmfs: Sequence[PMF],
                          deadlines: Sequence[int],
                          prune_eps: float = 1e-12,
                          folder: Optional[ChainFolder] = None,
                          want_mean: bool = True,
                          want_chance: bool = False,
                          ) -> Tuple[List[PMF], Optional[np.ndarray],
                                     Optional[np.ndarray]]:
    """Fold a *stack* of candidates onto one tail and score each of them.

    This is the score-plane kernel behind the vectorised mapping backend
    (:mod:`repro.mapping.kernel`): one call evaluates a whole column of the
    (task x machine) plane -- every candidate task appended to the same
    machine tail -- and writes the requested scalar scores straight into
    NumPy arrays, with none of the per-pair tuple/closure overhead of the
    per-call path.

    Each element performs exactly the arithmetic of
    :func:`completion_pmf` followed by :meth:`PMF.mean` /
    :meth:`PMF.mass_before`, in the same order, so every returned score is
    bit-identical to what the scalar path computes for the same pair.  With
    ``folder`` the folds share the run's memo and scratch buffers.

    Returns ``(pmfs, means, chances)``; ``means`` / ``chances`` are ``None``
    unless requested.
    """
    n = len(exec_pmfs)
    pmfs: List[PMF] = [None] * n  # type: ignore[list-item]
    means = np.empty(n, dtype=np.float64) if want_mean else None
    chances = np.empty(n, dtype=np.float64) if want_chance else None
    for i in range(n):
        deadline = int(deadlines[i])
        if folder is not None:
            pmf = folder.fold(prev, exec_pmfs[i], deadline)
        else:
            pmf = _fold(prev, exec_pmfs[i], deadline, prune_eps, None)
        pmfs[i] = pmf
        if means is not None:
            means[i] = (folder.mean(pmf) if folder is not None
                        else pmf.mean())
        if chances is not None:
            chances[i] = (folder.chance(pmf, deadline) if folder is not None
                          else pmf.mass_before(deadline))
    return pmfs, means, chances


def chance_of_success(completion: PMF, deadline: int) -> float:
    """Probability that a task completes strictly before its deadline (Eq. 2).

    Served from the installed :class:`ChainFolder`'s memo when one is
    active: chain PMFs are identity-stable (memoised folds return the same
    object), so the repeated queries issued by the dropping heuristic while
    re-walking a queue collapse into dictionary hits.
    """
    folder = _ACTIVE_FOLDER
    if folder is not None:
        return folder.chance(completion, int(deadline))
    return completion.mass_before(deadline)


def fold_chain(base: PMF, entries: Sequence[QueueEntry],
               prune_eps: float = 1e-12,
               folder: Optional[ChainFolder] = None) -> List[PMF]:
    """Completion-time PMFs of a queue, optionally through a fold kernel.

    With ``folder`` (whose ``prune_eps`` must match) the chain runs through
    the batched kernel; otherwise each step is a plain
    :func:`completion_pmf` call.  Results are identical either way.
    """
    if folder is not None:
        if folder.prune_eps != prune_eps:
            raise ValueError("folder prune_eps does not match the chain's")
        return folder.fold_chain(base, entries)
    result: List[PMF] = []
    prev = base
    for entry in entries:
        prev = completion_pmf(prev, entry.exec_pmf, entry.deadline, prune_eps)
        result.append(prev)
    return result


def queue_completion_pmfs(base: PMF, entries: Sequence[QueueEntry],
                          prune_eps: float = 1e-12) -> List[PMF]:
    """Completion-time PMFs of every pending task in a machine queue.

    Parameters
    ----------
    base:
        Completion-time PMF of whatever is ahead of the first pending task:
        the currently running task's (conditioned) completion PMF, or a delta
        at the current time for an idle machine.
    entries:
        Pending tasks in queue order (head first).

    Returns
    -------
    list of PMF
        ``result[k]`` is the completion-time PMF of ``entries[k]``.
    """
    return fold_chain(base, entries, prune_eps)


def queue_completion_with_drops(base: PMF, entries: Sequence[QueueEntry],
                                dropped: Sequence[int],
                                prune_eps: float = 1e-12) -> List[Optional[PMF]]:
    """Completion PMFs when a subset of queue positions is provisionally dropped.

    Dropped positions contribute nothing to the chain (their execution time
    vanishes entirely, Eq. 4) and their slot in the returned list is ``None``.

    Parameters
    ----------
    base:
        Completion-time PMF ahead of the first pending task.
    entries:
        Pending tasks in queue order.
    dropped:
        Indices (into ``entries``) of tasks that are provisionally dropped.
    """
    dropped_set = set(int(i) for i in dropped)
    for i in sorted(dropped_set):
        if i < 0 or i >= len(entries):
            raise IndexError(f"drop index {i} out of range for queue of "
                             f"length {len(entries)}")
    result: List[Optional[PMF]] = []
    prev = base
    for idx, entry in enumerate(entries):
        if idx in dropped_set:
            result.append(None)
            continue
        prev = completion_pmf(prev, entry.exec_pmf, entry.deadline, prune_eps)
        result.append(prev)
    return result
