"""Completion-time propagation along a machine queue.

These functions implement Equations 1, 4 and 5 of the paper: the completion
time PMF of a pending task is obtained by convolving its execution time PMF
with the completion time PMF of the task ahead of it, *truncated at the
task's own deadline*.  The truncation encodes reactive dropping inside the
probabilistic model: in the branch where the previous task finishes after the
pending task's deadline, the pending task is (will be) reactively dropped, so
its "execution time" is zero and the completion time of the queue position
equals the completion time of the previous task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .pmf import PMF

__all__ = [
    "QueueEntry",
    "completion_pmf",
    "queue_completion_pmfs",
    "queue_completion_with_drops",
    "chance_of_success",
]


@dataclass(frozen=True)
class QueueEntry:
    """Scheduler view of one pending task in a machine queue.

    Attributes
    ----------
    task_id:
        Identifier of the task (opaque to the probabilistic core).
    exec_pmf:
        Execution-time PMF of the task on the machine owning the queue
        (a PET matrix entry).
    deadline:
        Absolute hard deadline of the task, in time units.
    """

    task_id: int
    exec_pmf: PMF
    deadline: int

    def __post_init__(self):
        if self.exec_pmf.is_empty:
            raise ValueError("queue entry requires a non-empty execution PMF")


def completion_pmf(prev_completion: PMF, exec_pmf: PMF, deadline: int,
                   prune_eps: float = 1e-12) -> PMF:
    """Completion-time PMF of a task queued behind ``prev_completion``.

    Implements Eq. 1 (and its provisional-dropping variants Eq. 4/5): the
    portion of ``prev_completion`` that falls strictly before ``deadline``
    lets the task start, so it is convolved with ``exec_pmf``; the portion at
    or after ``deadline`` corresponds to the task being reactively dropped,
    so it is passed through unchanged.

    Parameters
    ----------
    prev_completion:
        Completion-time PMF of the task (or machine availability) directly
        ahead in the queue.  May be a sub-probability PMF.
    exec_pmf:
        Execution-time PMF of the task being evaluated.
    deadline:
        Absolute deadline ``δ_i`` of the task being evaluated.
    prune_eps:
        Impulses below this mass are discarded from the result to bound the
        support growth of chained convolutions.

    Notes
    -----
    This is the innermost loop of the whole simulator (it runs once per
    pending task per scheduler view), so the split/convolve/mixture/prune
    pipeline is fused into a single output allocation instead of chaining
    the four equivalent :class:`PMF` operations.  The arithmetic -- operand
    trimming, convolution, mixture addition and pruning -- is performed on
    exactly the same arrays in the same order, so results are bit-identical
    to the composed form.
    """
    pp = prev_completion.probs
    po = prev_completion.origin
    k = int(deadline) - po
    if prev_completion.is_empty or k <= 0:
        # The predecessor can never finish before the deadline: the task is
        # certain to be reactively dropped and the chain passes through
        # unchanged.
        return prev_completion.pruned(prune_eps)
    if exec_pmf.is_empty:
        return prev_completion.split_at(deadline)[1].pruned(prune_eps)
    ep = exec_pmf.probs
    eo = exec_pmf.origin
    if k >= pp.size:
        # Everything starts on time: a plain convolution.
        out = np.convolve(pp, ep)
        return PMF._trusted(po + eo, np.where(out >= prune_eps, out, 0.0))
    # ``pp[:k]`` starts on time; its tail may hold interior zeros that a
    # split would have trimmed, and the convolution operand must match that
    # trimmed array exactly for bitwise reproducibility.  (``pp[0]`` is
    # always nonzero -- PMFs are stored trimmed -- so the slice is never
    # all-zero.)
    on_time = pp[:k]
    nz = np.nonzero(on_time)[0]
    on_time = on_time[:int(nz[-1]) + 1]
    conv = np.convolve(on_time, ep)
    conv_origin = po + eo
    drop_origin = po + k
    lo = min(conv_origin, drop_origin)
    hi = max(conv_origin + conv.size, po + pp.size)
    out = np.zeros(hi - lo, dtype=np.float64)
    out[conv_origin - lo:conv_origin - lo + conv.size] += conv
    out[drop_origin - lo:drop_origin - lo + pp.size - k] += pp[k:]
    return PMF._trusted(lo, np.where(out >= prune_eps, out, 0.0))


def chance_of_success(completion: PMF, deadline: int) -> float:
    """Probability that a task completes strictly before its deadline (Eq. 2)."""
    return completion.mass_before(deadline)


def queue_completion_pmfs(base: PMF, entries: Sequence[QueueEntry],
                          prune_eps: float = 1e-12) -> List[PMF]:
    """Completion-time PMFs of every pending task in a machine queue.

    Parameters
    ----------
    base:
        Completion-time PMF of whatever is ahead of the first pending task:
        the currently running task's (conditioned) completion PMF, or a delta
        at the current time for an idle machine.
    entries:
        Pending tasks in queue order (head first).

    Returns
    -------
    list of PMF
        ``result[k]`` is the completion-time PMF of ``entries[k]``.
    """
    result: List[PMF] = []
    prev = base
    for entry in entries:
        prev = completion_pmf(prev, entry.exec_pmf, entry.deadline, prune_eps)
        result.append(prev)
    return result


def queue_completion_with_drops(base: PMF, entries: Sequence[QueueEntry],
                                dropped: Sequence[int],
                                prune_eps: float = 1e-12) -> List[Optional[PMF]]:
    """Completion PMFs when a subset of queue positions is provisionally dropped.

    Dropped positions contribute nothing to the chain (their execution time
    vanishes entirely, Eq. 4) and their slot in the returned list is ``None``.

    Parameters
    ----------
    base:
        Completion-time PMF ahead of the first pending task.
    entries:
        Pending tasks in queue order.
    dropped:
        Indices (into ``entries``) of tasks that are provisionally dropped.
    """
    dropped_set = set(int(i) for i in dropped)
    for i in dropped_set:
        if i < 0 or i >= len(entries):
            raise IndexError(f"drop index {i} out of range for queue of "
                             f"length {len(entries)}")
    result: List[Optional[PMF]] = []
    prev = base
    for idx, entry in enumerate(entries):
        if idx in dropped_set:
            result.append(None)
            continue
        prev = completion_pmf(prev, entry.exec_pmf, entry.deadline, prune_eps)
        result.append(prev)
    return result
