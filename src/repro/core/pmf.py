"""Discrete probability mass functions over integer time.

The paper models the execution time of each task type on each machine type as
a discrete random variable whose distribution is a Probability Mass Function
(PMF).  All of the probabilistic machinery of the dropping mechanism --
completion-time chaining (Eq. 1), chance of success (Eq. 2), instantaneous
robustness (Eq. 3) -- is built on a handful of PMF operations:

* convolution (sum of independent random variables),
* splitting a PMF at a deadline (the branch where a task starts on time
  versus the branch where it is reactively dropped),
* mixture addition (recombining those branches),
* mass queries (``P(X < t)``), and
* conditioning (the scheduler's view of a task that is already running).

This module implements a small, NumPy-backed PMF type optimised for those
operations.  Time is an integer number of *time units* (milliseconds
throughout the repository).  A :class:`PMF` may carry total mass below one;
such *sub-probability* PMFs arise naturally when a distribution is split at a
deadline and are recombined with :meth:`PMF.add`.

The representation is dense: ``probs[k]`` is the probability of the value
``origin + k``.  Dense storage makes convolution a single call into numpy's
correlate kernel (``_convolve_full``, bit-identical to ``np.convolve`` minus
the Python wrapper), which is the hot path of the whole simulator.

Hash-consing
------------
PMFs are *interned* (hash-consed): a process-wide weak-valued table keyed on
``(origin, probs.tobytes())`` canonicalises every instance that crosses a
*publication* boundary -- the public constructors, unpickling, and the
chain tails published by the batched Eq. 1 fold kernel -- so two published
PMFs carrying bitwise identical mass are the *same object*.  The payoff is
upstream: the simulator's incremental caches gate reuse on
:meth:`PMF.identical`, which degenerates to a pointer comparison for
interned instances, and fold results can be memoised under ``id``-stable
keys.  Transient intermediates (split branches, shifted copies, score
evaluations) deliberately stay out of the table: registering their churn
costs far more than it saves, both directly and in garbage-collector sweep
time.  Interning never changes a value -- the canonical representative is
bitwise identical by construction -- so it is semantically invisible.  Set
``REPRO_NO_INTERN=1`` in the environment (before import) to disable it when
debugging; the empty PMF remains a unique singleton either way.
"""

from __future__ import annotations

import os
import weakref
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PMF", "EMPTY_PMF", "interning_enabled", "intern_stats",
           "intern_table_size"]

try:  # pragma: no cover - import resolution depends on the numpy major
    from numpy._core.multiarray import correlate as _correlate  # numpy >= 2
except ImportError:  # pragma: no cover
    try:
        from numpy.core.multiarray import correlate as _correlate  # numpy 1.x
    except ImportError:
        _correlate = None

#: ``multiarray.correlate`` integer code for the 'full' convolution mode.
_FULL_MODE = 2


def _convolve_full(a: np.ndarray, ep: np.ndarray, ep_rev) -> np.ndarray:
    """Exactly ``np.convolve(a, ep)`` minus the Python wrapper overhead.

    ``np.convolve`` swaps its operands so the longer one comes first, then
    calls ``multiarray.correlate(long, short[::-1], 'full')``; this helper
    replicates that dance bit-for-bit while letting the fold kernel pass a
    *pre-reversed* execution-time operand (``ep_rev``), which ``np.convolve``
    would otherwise re-reverse (and re-allocate) on every fold of a chain.
    """
    if _correlate is None:  # pragma: no cover - ancient numpy fallback
        return np.convolve(a, ep)
    if ep.size > a.size:
        return _correlate(ep, a[::-1], _FULL_MODE)
    if ep_rev is None:
        ep_rev = ep[::-1]
    return _correlate(a, ep_rev, _FULL_MODE)

#: Probability mass below this value is discarded by :meth:`PMF.pruned`.
DEFAULT_PRUNE_EPS = 1e-12

#: Shared storage of every zero-mass PMF built through the fast path.
_EMPTY_PROBS = np.empty(0, dtype=np.float64)
_EMPTY_PROBS.setflags(write=False)

#: Tolerance used when checking that a PMF is (sub-)normalised.
MASS_TOLERANCE = 1e-6

#: ``REPRO_NO_INTERN=1`` (or ``true``/``yes``/``on``) disables hash-consing.
_INTERNING = os.environ.get("REPRO_NO_INTERN", "").strip().lower() not in {
    "1", "true", "yes", "on"}

#: Process-wide intern table.  Weak values: a canonical PMF lives exactly as
#: long as something outside the table references it.
_INTERN_TABLE: "weakref.WeakValueDictionary[Tuple[int, bytes], PMF]" = \
    weakref.WeakValueDictionary()

#: Cumulative intern-table counters (see :func:`intern_stats`).
_INTERN_STATS: Dict[str, int] = {"interned": 0, "intern_hits": 0}

#: The unique zero-mass PMF; created lazily by the first empty construction
#: and exposed as :data:`EMPTY_PMF` at the bottom of the module.
_EMPTY: Optional["PMF"] = None


def interning_enabled() -> bool:
    """True unless interning was disabled via ``REPRO_NO_INTERN``."""
    return _INTERNING


def intern_stats() -> Dict[str, int]:
    """Snapshot of the cumulative intern-table counters.

    ``interned`` counts distinct PMFs registered in the table and
    ``intern_hits`` counts constructions answered by an existing canonical
    instance.  Both are process-wide and monotonically increasing; consumers
    (e.g. :class:`~repro.sim.perf.PerfStats`) report deltas between
    snapshots.
    """
    return dict(_INTERN_STATS)


def intern_table_size() -> int:
    """Number of canonical PMFs currently alive in the intern table."""
    return len(_INTERN_TABLE)


def _intern_get(origin: int, data: bytes) -> Optional["PMF"]:
    """Canonical PMF for ``(origin, data)`` if one is alive, else ``None``.

    Kernel-internal: lets the batched fold kernel probe the table with a
    scratch buffer *before* paying for a defensive copy (see
    :mod:`repro.core.completion`).  Returns ``None`` when interning is
    disabled so callers fall back to plain construction.
    """
    if not _INTERNING:
        return None
    if not data:
        return _EMPTY  # may be None before the first empty construction
    hit = _INTERN_TABLE.get((origin, data))
    if hit is not None:
        _INTERN_STATS["intern_hits"] += 1
    return hit


class PMF:
    """A (sub-)probability mass function over the integers.

    Parameters
    ----------
    origin:
        Integer time value of the first entry of ``probs``.
    probs:
        Non-negative probabilities; ``probs[k]`` is the probability of the
        value ``origin + k``.  The array is copied, trimmed of leading and
        trailing zeros and validated.

    Notes
    -----
    Instances are immutable.  PMFs built through the public constructors
    (``PMF(...)``, :meth:`delta`, :meth:`from_impulses`, ...), through
    unpickling, and the chain tails published by the batched fold kernel
    are hash-consed: bitwise-equal values resolve to one canonical object.
    Structural intermediates (:meth:`split_at` branches, :meth:`shift`,
    in-flight fold results) stay transient to keep the hot loop free of
    table bookkeeping; they still share the unique :data:`EMPTY_PMF`
    singleton, which behaves as the additive identity of :meth:`add`.
    """

    __slots__ = ("_origin", "_probs", "__weakref__")

    def __new__(cls, origin: int = 0, probs: Iterable[float] = ()):
        if isinstance(probs, np.ndarray) or isinstance(probs, (list, tuple)):
            arr = np.asarray(probs, dtype=np.float64)
        else:
            # Generic iterables (generators, maps) stream straight into a
            # float64 buffer instead of round-tripping through a list.
            arr = np.fromiter(probs, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("probs must be one-dimensional")
        if arr.size and np.any(arr < -1e-15):
            raise ValueError("probabilities must be non-negative")
        arr = np.clip(arr, 0.0, None)
        total = float(arr.sum())
        if total > 1.0 + MASS_TOLERANCE:
            raise ValueError(f"total probability mass {total} exceeds 1")
        origin = int(origin)
        # Trim leading/trailing zeros so origin/support are canonical.
        nz = arr.nonzero()[0]
        if nz.size == 0:
            return cls._build(0, _EMPTY_PROBS)
        lo, hi = int(nz[0]), int(nz[-1]) + 1
        trimmed = arr[lo:hi].copy()
        trimmed.setflags(write=False)
        return cls._build(origin + lo, trimmed)

    def __init__(self, origin: int = 0, probs: Iterable[float] = ()):
        # Construction happens entirely in __new__ (which may return an
        # existing interned instance); nothing to initialise here.
        pass

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _build(cls, origin: int, arr: np.ndarray,
               data: Optional[bytes] = None) -> "PMF":
        """Intern-aware constructor for trimmed, read-only, canonical arrays.

        ``arr`` must already be trimmed (non-zero first and last entries) and
        non-writeable; ``data`` may carry its precomputed ``tobytes()`` so a
        caller that already probed the table does not serialise twice.
        Returns the canonical instance for the value -- either an existing
        interned PMF or a freshly registered one.  All construction paths
        funnel through here, so the zero-mass PMF is a process-wide
        singleton even with interning disabled.
        """
        global _EMPTY
        if arr.size == 0:
            if _EMPTY is None:
                _EMPTY = cls._fresh(0, _EMPTY_PROBS)
            return _EMPTY
        if not _INTERNING:
            return cls._fresh(origin, arr)
        key = (origin, arr.tobytes() if data is None else data)
        hit = _INTERN_TABLE.get(key)
        if hit is not None:
            _INTERN_STATS["intern_hits"] += 1
            return hit
        self = cls._fresh(origin, arr)
        _INTERN_TABLE[key] = self
        _INTERN_STATS["interned"] += 1
        return self

    @classmethod
    def _fresh(cls, origin: int, arr: np.ndarray) -> "PMF":
        """Allocate an instance without interning (table misses only)."""
        self = object.__new__(cls)
        self._origin = origin
        self._probs = arr
        return self

    @classmethod
    def _trusted(cls, origin: int, arr: np.ndarray) -> "PMF":
        """Internal fast constructor for already-validated probability arrays.

        ``arr`` must be a one-dimensional non-negative float64 array whose
        total mass is known to be at most one (the result of an operation on
        existing PMFs).  Only the leading/trailing-zero trim of the public
        constructor is performed; validation and the defensive copy are
        skipped.  The array may be a view into another PMF's storage --
        instances are immutable, so sharing is safe.

        Results are *not* registered in the intern table: this is the
        construction path of transient intermediates (split branches, score
        evaluations, fold chains in flight), and registering the huge churn
        of distinct throwaway values measurably slows the simulator down --
        both directly and through the garbage collector, which has to sweep
        every registered weakref.  Interning happens at the *publication*
        boundaries instead: the public constructors, unpickling, and the
        chain tails published by the batched fold kernel
        (:class:`repro.core.completion.ChainFolder`).  The zero-mass
        singleton is still returned here, and a transient that is bitwise
        equal to a canonical PMF still compares equal through the
        :meth:`identical` fallback.
        """
        if arr.size and arr[0] != 0.0 and arr[-1] != 0.0:
            # Already trimmed (the overwhelmingly common case): skip the
            # nonzero scan entirely.
            lo = 0
        else:
            nz = arr.nonzero()[0]
            if nz.size == 0:
                return cls._build(0, _EMPTY_PROBS)
            lo, hi = int(nz[0]), int(nz[-1]) + 1
            if lo != 0 or hi != arr.size:
                arr = arr[lo:hi]
        if arr.flags.writeable:
            arr.setflags(write=False)
        return cls._fresh(int(origin) + lo, arr)

    @classmethod
    def _from_trimmed(cls, origin: int, arr: np.ndarray,
                      data: Optional[bytes] = None) -> "PMF":
        """Trusted constructor for arrays that are *already* trimmed.

        The fastest construction path: no validation, no trim scan, no copy.
        ``arr`` must be a one-dimensional float64 array whose first and last
        entries are non-zero (or an empty array) and which the caller
        guarantees will never be mutated -- kernel-internal code that just
        produced a canonical array hands it over here (optionally with its
        precomputed ``tobytes()``).
        """
        if arr.size == 0:
            return cls._build(0, _EMPTY_PROBS)
        if arr.flags.writeable:
            arr.setflags(write=False)
        return cls._build(int(origin), arr, data)

    @classmethod
    def delta(cls, t: int) -> "PMF":
        """Degenerate PMF with all mass at time ``t``."""
        return cls(int(t), np.array([1.0]))

    @classmethod
    def empty(cls) -> "PMF":
        """PMF with zero total mass (additive identity); a unique singleton."""
        return cls._build(0, _EMPTY_PROBS)

    @classmethod
    def from_impulses(cls, times: Sequence[int], probs: Sequence[float]) -> "PMF":
        """Build a PMF from sparse ``(time, probability)`` impulses.

        Duplicate times are accumulated.  This is the constructor used when
        converting histogram bins (the paper's discretisation of sampled
        execution times) into a PMF.
        """
        times_arr = np.asarray(times, dtype=np.int64)
        probs_arr = np.asarray(probs, dtype=np.float64)
        if times_arr.shape != probs_arr.shape:
            raise ValueError("times and probs must have the same length")
        if times_arr.size == 0:
            return cls.empty()
        lo = int(times_arr.min())
        hi = int(times_arr.max())
        dense = np.zeros(hi - lo + 1, dtype=np.float64)
        np.add.at(dense, times_arr - lo, probs_arr)
        return cls(lo, dense)

    @classmethod
    def from_samples(cls, samples: Sequence[float], max_impulses: int = 32,
                     min_value: int = 1) -> "PMF":
        """Discretise empirical samples into a PMF with bounded support size.

        The paper generates 500 Gamma-distributed execution-time samples per
        (task type, machine type) pair and "applies a histogram to discretise
        the result and produce PMFs".  This helper reproduces that step:
        samples are rounded to integer time units, clipped below at
        ``min_value`` and, if the number of distinct values exceeds
        ``max_impulses``, re-binned into ``max_impulses`` equal-width bins
        whose probability mass is placed at the (rounded) bin centres.
        """
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot build a PMF from zero samples")
        if np.any(~np.isfinite(arr)):
            raise ValueError("samples must be finite")
        values = np.maximum(np.rint(arr).astype(np.int64), int(min_value))
        uniq, counts = np.unique(values, return_counts=True)
        if uniq.size > max_impulses:
            lo, hi = float(values.min()), float(values.max())
            edges = np.linspace(lo, hi + 1e-9, max_impulses + 1)
            idx = np.clip(np.searchsorted(edges, values, side="right") - 1,
                          0, max_impulses - 1)
            centres = np.rint((edges[:-1] + edges[1:]) / 2.0).astype(np.int64)
            centres = np.maximum(centres, int(min_value))
            mass = np.bincount(idx, minlength=max_impulses).astype(np.float64)
            keep = mass > 0
            uniq, counts = centres[keep], mass[keep]
        probs = counts / counts.sum()
        return cls.from_impulses(uniq, probs)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def origin(self) -> int:
        """Smallest time value with non-zero probability (0 if empty)."""
        return self._origin

    @property
    def probs(self) -> np.ndarray:
        """Read-only dense probability array starting at :attr:`origin`."""
        return self._probs

    @property
    def is_empty(self) -> bool:
        """True when the PMF carries zero probability mass."""
        return self._probs.size == 0

    @property
    def total_mass(self) -> float:
        """Total probability mass (1.0 for a proper PMF)."""
        return float(self._probs.sum()) if self._probs.size else 0.0

    @property
    def min_time(self) -> int:
        """Smallest value in the support (0 for the empty PMF)."""
        return self._origin

    @property
    def max_time(self) -> int:
        """Largest value in the support (0 for the empty PMF)."""
        if self.is_empty:
            return 0
        return self._origin + self._probs.size - 1

    @property
    def support_size(self) -> int:
        """Number of values with non-zero probability."""
        return int(np.count_nonzero(self._probs))

    def impulses(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the sparse ``(times, probabilities)`` representation."""
        if self.is_empty:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        idx = np.nonzero(self._probs)[0]
        return idx + self._origin, self._probs[idx].copy()

    def prob_at(self, t: int) -> float:
        """Probability of exactly the value ``t``."""
        k = int(t) - self._origin
        if k < 0 or k >= self._probs.size:
            return 0.0
        return float(self._probs[k])

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Expected value; raises on an empty PMF."""
        if self.is_empty:
            raise ValueError("mean of an empty PMF is undefined")
        times = self._origin + np.arange(self._probs.size)
        return float(np.dot(times, self._probs) / self.total_mass)

    def variance(self) -> float:
        """Variance of the distribution (mass-normalised)."""
        if self.is_empty:
            raise ValueError("variance of an empty PMF is undefined")
        times = self._origin + np.arange(self._probs.size, dtype=np.float64)
        w = self._probs / self.total_mass
        mu = float(np.dot(times, w))
        return float(np.dot((times - mu) ** 2, w))

    def std(self) -> float:
        """Standard deviation of the distribution."""
        return float(np.sqrt(self.variance()))

    def quantile(self, q: float) -> int:
        """Smallest value ``t`` with ``P(X <= t) >= q * total_mass``."""
        if self.is_empty:
            raise ValueError("quantile of an empty PMF is undefined")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        target = q * self.total_mass
        cum = np.cumsum(self._probs)
        idx = int(np.searchsorted(cum, target - 1e-15, side="left"))
        idx = min(idx, self._probs.size - 1)
        return self._origin + idx

    # ------------------------------------------------------------------
    # Mass queries
    # ------------------------------------------------------------------
    def mass_before(self, t: int) -> float:
        """Probability mass strictly before ``t`` (``P(X < t)``).

        This is the paper's *chance of success* query (Eq. 2) when ``t`` is a
        task deadline.
        """
        k = int(t) - self._origin
        if k <= 0:
            return 0.0
        if k >= self._probs.size:
            return self.total_mass
        return float(self._probs[:k].sum())

    def mass_at_or_after(self, t: int) -> float:
        """Probability mass at or after ``t`` (``P(X >= t)``)."""
        return self.total_mass - self.mass_before(t)

    def cdf(self, t: int) -> float:
        """``P(X <= t)``."""
        return self.mass_before(int(t) + 1)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def split_at(self, t: int) -> Tuple["PMF", "PMF"]:
        """Split into ``(mass with X < t, mass with X >= t)``.

        Both halves keep their original time values; their total masses sum
        to :attr:`total_mass`.  This mirrors the two branches of Eq. 1: the
        branch in which the next task can start before its deadline and the
        branch in which it is reactively dropped.
        """
        if self.is_empty:
            return PMF.empty(), PMF.empty()
        k = int(t) - self._origin
        if k <= 0:
            return PMF.empty(), self
        if k >= self._probs.size:
            return self, PMF.empty()
        return (PMF._trusted(self._origin, self._probs[:k]),
                PMF._trusted(self._origin + k, self._probs[k:]))

    def shift(self, dt: int) -> "PMF":
        """Translate the distribution by ``dt`` time units."""
        if self.is_empty or dt == 0:
            return self
        # Transient (non-interned) like every structural intermediate; the
        # storage is already trimmed and read-only, so it is shared as-is.
        return PMF._fresh(self._origin + int(dt), self._probs)

    def scaled(self, factor: float) -> "PMF":
        """Multiply all probabilities by ``factor`` in ``[0, 1]``."""
        if factor < 0 or factor > 1.0 + MASS_TOLERANCE:
            raise ValueError("scale factor must be within [0, 1]")
        if self.is_empty or factor == 1.0:
            return self
        return PMF._trusted(self._origin, self._probs * factor)

    def add(self, other: "PMF") -> "PMF":
        """Pointwise mixture sum of two sub-probability PMFs.

        The combined mass must not exceed one.  Used to recombine the
        "started on time" and "reactively dropped" branches of Eq. 1.
        """
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        combined = self.total_mass + other.total_mass
        if combined > 1.0 + MASS_TOLERANCE:
            raise ValueError(f"total probability mass {combined} exceeds 1")
        lo = min(self._origin, other._origin)
        hi = max(self.max_time, other.max_time)
        dense = np.zeros(hi - lo + 1, dtype=np.float64)
        dense[self._origin - lo:self._origin - lo + self._probs.size] += self._probs
        dense[other._origin - lo:other._origin - lo + other._probs.size] += other._probs
        return PMF._trusted(lo, dense)

    def convolve(self, other: "PMF") -> "PMF":
        """Distribution of the sum of two independent random variables.

        The total mass of the result is the product of the operand masses,
        so convolving with a sub-probability PMF keeps mass bookkeeping
        consistent.
        """
        if self.is_empty or other.is_empty:
            return PMF.empty()
        probs = _convolve_full(self._probs, other._probs, None)
        return PMF._trusted(self._origin + other._origin, probs)

    def conditional_at_least(self, t: int) -> "PMF":
        """Condition on ``X >= t`` and renormalise to the original mass.

        This is the scheduler's estimate of the remaining completion time of
        a task that started in the past and has not finished by time ``t``.
        """
        before, after = self.split_at(t)
        if after.is_empty:
            # All mass is in the past: the task should have finished already.
            # The best available estimate is "immediately", i.e. at time t.
            return PMF.delta(t).scaled(min(self.total_mass, 1.0))
        if before.is_empty:
            # No mass lies before ``t``: conditioning changes nothing (the
            # renormalisation factor is exactly 1.0), so the same immutable
            # instance can be returned.
            return self
        return PMF._trusted(after._origin,
                            after._probs * (self.total_mass / after.total_mass))

    def pruned(self, eps: float = DEFAULT_PRUNE_EPS) -> "PMF":
        """Drop impulses with probability below ``eps``.

        The paper notes that, in practice, the number of impulses produced by
        chained convolutions stays small; pruning negligible mass keeps the
        dense representation compact without materially changing any chance
        of success.
        """
        if self.is_empty:
            return self
        mask = self._probs >= eps
        if mask.all():
            # Nothing to prune: keep the same immutable instance, so
            # identity-based cache checks upstream keep hitting.
            return self
        return PMF._trusted(self._origin, np.where(mask, self._probs, 0.0))

    def normalised(self) -> "PMF":
        """Rescale to total mass one (raises on the empty PMF)."""
        if self.is_empty:
            raise ValueError("cannot normalise an empty PMF")
        return PMF(self._origin, self._probs / self.total_mass)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw integer samples from the (normalised) distribution."""
        if self.is_empty:
            raise ValueError("cannot sample from an empty PMF")
        times = self._origin + np.arange(self._probs.size)
        p = self._probs / self.total_mass
        out = rng.choice(times, size=size, p=p)
        if size is None:
            return int(out)
        return out.astype(np.int64)

    # ------------------------------------------------------------------
    # Comparison / representation
    # ------------------------------------------------------------------
    def identical(self, other: "PMF") -> bool:
        """True when both PMFs carry bitwise-identical mass at every value.

        Unlike :meth:`approx_equal` this is an exact comparison (no
        tolerance); it is the gate used by the simulator's incremental
        completion-PMF caches, where reuse is only allowed when it provably
        cannot change any downstream result.  Interned PMFs resolve it with
        the ``self is other`` pointer check; the array comparison only runs
        for instances built with interning disabled.
        """
        if self is other:
            return True
        return (self._origin == other._origin
                and self._probs.size == other._probs.size
                and bool(np.array_equal(self._probs, other._probs)))

    def approx_equal(self, other: "PMF", tol: float = 1e-9) -> bool:
        """True when both PMFs assign (almost) identical mass to every value."""
        if self.is_empty and other.is_empty:
            return True
        lo = min(self.min_time, other.min_time)
        hi = max(self.max_time, other.max_time)
        for t in range(lo, hi + 1):
            if abs(self.prob_at(t) - other.prob_at(t)) > tol:
                return False
        return True

    def __eq__(self, other: object) -> bool:  # pragma: no cover - trivial
        if not isinstance(other, PMF):
            return NotImplemented
        return self.approx_equal(other, tol=0.0)

    def __hash__(self):  # pragma: no cover - PMFs are not meant to be hashed
        return hash((self._origin, self._probs.tobytes()))

    def __reduce__(self):
        """Pickle as ``(origin, raw bytes)`` and re-intern on unpickling.

        Unpickled PMFs resolve to the canonical instance of the receiving
        process, so identity-keyed caches (fold memo, append cache) work
        across the worker-process boundary of ``run_trials``.
        """
        return (_restore_pmf, (self._origin, self._probs.tobytes()))

    def __repr__(self) -> str:
        if self.is_empty:
            return "PMF(empty)"
        return (f"PMF(origin={self._origin}, support={self.support_size}, "
                f"mass={self.total_mass:.6f}, mean={self.mean():.2f})")


def _restore_pmf(origin: int, data: bytes) -> PMF:
    """Unpickling factory: rebuild from raw bytes through the intern table."""
    arr = np.frombuffer(data, dtype=np.float64)
    return PMF._from_trimmed(origin, arr, data)


#: Shared immutable empty PMF instance (the unique zero-mass PMF).
EMPTY_PMF = PMF.empty()
