"""Probabilistic Execution Time (PET) matrix.

The PET matrix (Salehi et al., JPDC 2016; Section III of the reproduced
paper) stores, for every *task type* and every *machine type*, the PMF of the
execution time of that task type on that machine type.  The matrix is the
only information the mapper and the dropping mechanism have about execution
times: the actual (sampled) execution times used by the simulator are drawn
from the very same PMFs, which matches the paper's simulation methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from .pmf import PMF

__all__ = ["PETMatrix", "PETValidationError"]


class PETValidationError(ValueError):
    """Raised when a PET matrix is structurally invalid."""


@dataclass(frozen=True)
class PETMatrix:
    """Execution-time PMFs indexed by ``(task_type_id, machine_type_id)``.

    Parameters
    ----------
    task_type_names:
        Names of the task types; the index in this list is the task type id.
    machine_type_names:
        Names of the machine types; the index is the machine type id.
    entries:
        Mapping from ``(task_type_id, machine_type_id)`` to the execution
        time :class:`~repro.core.pmf.PMF` of that pair.  The mapping must be
        complete (every pair present) and every PMF must be a proper
        distribution with strictly positive support.
    """

    task_type_names: Tuple[str, ...]
    machine_type_names: Tuple[str, ...]
    entries: Mapping[Tuple[int, int], PMF] = field(repr=False)

    def __post_init__(self):
        object.__setattr__(self, "task_type_names", tuple(self.task_type_names))
        object.__setattr__(self, "machine_type_names", tuple(self.machine_type_names))
        object.__setattr__(self, "entries", dict(self.entries))
        self._validate()
        means = np.empty((self.num_task_types, self.num_machine_types), dtype=np.float64)
        for (i, j), pmf in self.entries.items():
            means[i, j] = pmf.mean()
        means.setflags(write=False)
        object.__setattr__(self, "_means", means)

    def _validate(self) -> None:
        if not self.task_type_names:
            raise PETValidationError("PET matrix needs at least one task type")
        if not self.machine_type_names:
            raise PETValidationError("PET matrix needs at least one machine type")
        expected = {(i, j)
                    for i in range(self.num_task_types)
                    for j in range(self.num_machine_types)}
        got = set(self.entries.keys())
        missing = expected - got
        extra = got - expected
        if missing:
            raise PETValidationError(f"PET matrix is missing entries: {sorted(missing)[:5]}")
        if extra:
            raise PETValidationError(f"PET matrix has unexpected entries: {sorted(extra)[:5]}")
        for key, pmf in self.entries.items():
            if not isinstance(pmf, PMF):
                raise PETValidationError(f"entry {key} is not a PMF")
            if pmf.is_empty:
                raise PETValidationError(f"entry {key} is an empty PMF")
            if abs(pmf.total_mass - 1.0) > 1e-6:
                raise PETValidationError(
                    f"entry {key} is not normalised (mass={pmf.total_mass})")
            if pmf.min_time <= 0:
                raise PETValidationError(
                    f"entry {key} has non-positive execution times")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_task_types(self) -> int:
        """Number of task types (rows)."""
        return len(self.task_type_names)

    @property
    def num_machine_types(self) -> int:
        """Number of machine types (columns)."""
        return len(self.machine_type_names)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(num_task_types, num_machine_types)``."""
        return self.num_task_types, self.num_machine_types

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def pmf(self, task_type: int, machine_type: int) -> PMF:
        """Execution-time PMF of ``task_type`` on ``machine_type``."""
        try:
            return self.entries[(int(task_type), int(machine_type))]
        except KeyError as exc:  # pragma: no cover - guarded by validation
            raise KeyError(f"no PET entry for task type {task_type} "
                           f"on machine type {machine_type}") from exc

    def mean_execution(self, task_type: int, machine_type: int) -> float:
        """Expected execution time of ``task_type`` on ``machine_type``."""
        return float(self._means[int(task_type), int(machine_type)])

    def mean_matrix(self) -> np.ndarray:
        """Matrix of expected execution times (task types × machine types)."""
        return self._means.copy()

    def task_type_mean(self, task_type: int) -> float:
        """Mean execution time of a task type averaged over machine types.

        This is the ``avg_i`` term of the paper's deadline formula
        ``δ_i = arr_i + avg_i + γ · avg_all``.
        """
        return float(self._means[int(task_type), :].mean())

    def overall_mean(self) -> float:
        """Mean execution time over all task and machine types (``avg_all``)."""
        return float(self._means.mean())

    def best_machine_type(self, task_type: int) -> int:
        """Machine type with the smallest expected execution time."""
        return int(np.argmin(self._means[int(task_type), :]))

    def iter_entries(self) -> Iterable[Tuple[int, int, PMF]]:
        """Iterate over ``(task_type, machine_type, pmf)`` triples."""
        for (i, j), pmf in sorted(self.entries.items()):
            yield i, j, pmf

    # ------------------------------------------------------------------
    # Heterogeneity diagnostics
    # ------------------------------------------------------------------
    def is_inconsistently_heterogeneous(self) -> bool:
        """True when the machine ranking differs across task types.

        An inconsistent HC system is one where machine A can be faster than
        machine B for one task type but slower for another (Section I of the
        paper).  The check compares the machine ordering induced by the mean
        execution time of each task type.
        """
        if self.num_machine_types < 2 or self.num_task_types < 2:
            return False
        orders = [tuple(np.argsort(self._means[i, :])) for i in range(self.num_task_types)]
        return len(set(orders)) > 1

    def heterogeneity_ratio(self) -> float:
        """Max/min ratio of mean execution times across the whole matrix."""
        return float(self._means.max() / self._means.min())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_grid(cls, task_type_names: Sequence[str],
                  machine_type_names: Sequence[str],
                  grid: Sequence[Sequence[PMF]]) -> "PETMatrix":
        """Build a PET matrix from a row-major nested list of PMFs."""
        entries: Dict[Tuple[int, int], PMF] = {}
        if len(grid) != len(task_type_names):
            raise PETValidationError("grid row count must match task types")
        for i, row in enumerate(grid):
            if len(row) != len(machine_type_names):
                raise PETValidationError("grid column count must match machine types")
            for j, pmf in enumerate(row):
                entries[(i, j)] = pmf
        return cls(tuple(task_type_names), tuple(machine_type_names), entries)

    def restrict_machine_types(self, machine_types: Sequence[int]) -> "PETMatrix":
        """Return a PET matrix restricted to a subset of machine types."""
        machine_types = [int(j) for j in machine_types]
        names = tuple(self.machine_type_names[j] for j in machine_types)
        entries = {(i, new_j): self.pmf(i, old_j)
                   for i in range(self.num_task_types)
                   for new_j, old_j in enumerate(machine_types)}
        return PETMatrix(self.task_type_names, names, entries)

    def describe(self) -> str:
        """Human-readable summary of the matrix (means in time units)."""
        lines: List[str] = []
        header = "task type".ljust(18) + "".join(
            name[:10].rjust(12) for name in self.machine_type_names)
        lines.append(header)
        for i, tname in enumerate(self.task_type_names):
            row = tname[:16].ljust(18) + "".join(
                f"{self._means[i, j]:12.1f}" for j in range(self.num_machine_types))
            lines.append(row)
        return "\n".join(lines)
