"""Benchmark regenerating Fig. 8: proactive vs threshold-based dropping.

Paper shape: robustness declines with oversubscription; PAM+Optimal and
PAM+Heuristic are statistically indistinguishable and both outperform (or at
least match) the threshold-based baseline.
"""

import pytest

from _bench_utils import emit
from repro.experiments.figures import figure8_dropping_policies


@pytest.mark.benchmark(group="figures")
def test_fig8_dropping_policies(benchmark, experiment_config):
    figure = benchmark.pedantic(
        lambda: figure8_dropping_policies(experiment_config,
                                          levels=("20k", "30k", "40k"),
                                          include_optimal=True),
        rounds=1, iterations=1)
    emit(figure)
    assert set(figure.series) == {"PAM+Optimal", "PAM+Heuristic", "PAM+Threshold"}
    for name, points in figure.series.items():
        assert [p.x for p in points] == ["20k", "30k", "40k"]
        # Robustness declines (not strictly, small-sample tolerance) with load.
        assert points[0].value >= points[-1].value - 5.0
    # Optimal and heuristic dropping track each other closely.
    for opt_point, heu_point in zip(figure.series["PAM+Optimal"],
                                    figure.series["PAM+Heuristic"]):
        assert abs(opt_point.value - heu_point.value) < 15.0
    # The autonomous mechanisms are competitive with the threshold baseline.
    for heu_point, thr_point in zip(figure.series["PAM+Heuristic"],
                                    figure.series["PAM+Threshold"]):
        assert heu_point.value >= thr_point.value - 10.0
