"""Benchmark regenerating Fig. 7a: mapping heuristics in a heterogeneous system.

Paper shape: for every mapping heuristic (MSD, MM, PAM) the proactive
dropping heuristic ("+Heuristic") achieves at least the robustness of the
reactive-only baseline ("+ReactDrop"), and with dropping enabled the three
mapping heuristics converge to a similar robustness.
"""

import pytest

from _bench_utils import emit
from repro.experiments.figures import figure7a_heterogeneous


@pytest.mark.benchmark(group="figures")
def test_fig7a_heterogeneous(benchmark, experiment_config):
    figure = benchmark.pedantic(
        lambda: figure7a_heterogeneous(experiment_config, level="30k",
                                       mappers=("MSD", "MM", "PAM")),
        rounds=1, iterations=1)
    emit(figure)
    assert len(figure.series) == 6
    for mapper in ("MSD", "MM", "PAM"):
        with_drop = figure.series[f"{mapper}+Heuristic"][0].value
        without = figure.series[f"{mapper}+ReactDrop"][0].value
        # Proactive dropping should not hurt (small-sample tolerance).
        assert with_drop >= without - 5.0
    # Convergence under dropping: the spread across mapping heuristics is
    # much smaller than the full percentage scale.
    dropped_values = [figure.series[f"{m}+Heuristic"][0].value
                      for m in ("MSD", "MM", "PAM")]
    assert max(dropped_values) - min(dropped_values) < 30.0
