"""Benchmark regenerating Fig. 9: incurred cost of using resources.

Paper shape: in an oversubscribed system, both dropping-enabled
configurations (PAM+Threshold and PAM+Heuristic) incur a markedly lower cost
per completed-task percentage than MM with reactive dropping only, because
they avoid spending machine time on tasks that would miss their deadlines.
"""

import pytest

from _bench_utils import emit
from repro.experiments.figures import figure9_cost


@pytest.mark.benchmark(group="figures")
def test_fig9_cost(benchmark, experiment_config):
    figure = benchmark.pedantic(
        lambda: figure9_cost(experiment_config, levels=("20k", "30k", "40k")),
        rounds=1, iterations=1)
    emit(figure)
    assert set(figure.series) == {"PAM+Threshold", "PAM+Heuristic", "MM+ReactDrop"}
    for points in figure.series.values():
        assert all(p.value >= 0.0 for p in points)
    # Shape: at the heaviest oversubscription level the proactive heuristic
    # is no more expensive per completed task than the reactive-only MM.
    heuristic_heavy = figure.series["PAM+Heuristic"][-1].value
    react_heavy = figure.series["MM+ReactDrop"][-1].value
    assert heuristic_heavy <= react_heavy * 1.2
