"""Micro-benchmarks of the probabilistic core (the simulator's hot path).

These benchmarks quantify the cost of the operations the complexity analysis
of Section IV-F talks about: a single deadline-truncated convolution, the
propagation of completion PMFs down a full machine queue, and one dropping
decision per policy on a paper-sized queue (capacity 6).
"""

import numpy as np
import pytest

from repro.core.completion import QueueEntry, completion_pmf, queue_completion_pmfs
from repro.core.dropping import (MachineQueueView, OptimalProactiveDropping,
                                 ProactiveHeuristicDropping, ThresholdDropping)
from repro.core.pmf import PMF
from repro.workload.pet_builder import GammaPETBuilder


def _paper_sized_queue(seed=0, queue_length=5):
    """A queue shaped like the paper's machine queues (capacity 6, 1 running)."""
    rng = np.random.default_rng(seed)
    builder = GammaPETBuilder(samples_per_pair=500, max_impulses=24)
    entries = []
    backlog = 0.0
    for task_id in range(queue_length):
        mean = rng.uniform(50, 200)
        exec_pmf = builder.sample_pair(mean, rng)
        backlog += mean
        deadline = int(backlog * rng.uniform(0.6, 1.8)) + 1
        entries.append(QueueEntry(task_id=task_id, exec_pmf=exec_pmf,
                                  deadline=deadline))
    return MachineQueueView(machine_id=0, now=0, base_pmf=PMF.delta(0),
                            entries=tuple(entries))


@pytest.fixture(scope="module")
def queue_view():
    return _paper_sized_queue()


@pytest.mark.benchmark(group="core-micro")
def test_single_truncated_convolution(benchmark, queue_view):
    prev = queue_view.base_pmf
    entry = queue_view.entries[0]
    result = benchmark(lambda: completion_pmf(prev, entry.exec_pmf, entry.deadline))
    assert result.total_mass == pytest.approx(1.0, abs=1e-9)


@pytest.mark.benchmark(group="core-micro")
def test_queue_completion_propagation(benchmark, queue_view):
    result = benchmark(lambda: queue_completion_pmfs(queue_view.base_pmf,
                                                     queue_view.entries))
    assert len(result) == queue_view.queue_length


@pytest.mark.benchmark(group="core-micro")
def test_heuristic_dropping_decision(benchmark, queue_view):
    policy = ProactiveHeuristicDropping(beta=1.0, eta=2)
    decision = benchmark(lambda: policy.evaluate_queue(queue_view))
    assert decision.num_drops <= queue_view.queue_length


@pytest.mark.benchmark(group="core-micro")
def test_optimal_dropping_decision(benchmark, queue_view):
    policy = OptimalProactiveDropping()
    decision = benchmark(lambda: policy.evaluate_queue(queue_view))
    assert decision.num_drops <= queue_view.queue_length


@pytest.mark.benchmark(group="core-micro")
def test_threshold_dropping_decision(benchmark, queue_view):
    policy = ThresholdDropping(threshold=0.25)
    decision = benchmark(lambda: policy.evaluate_queue(queue_view))
    assert decision.num_drops <= queue_view.queue_length


@pytest.mark.benchmark(group="core-micro")
def test_pet_construction(benchmark):
    """Cost of building one 12x8 PET matrix (500 Gamma samples per pair)."""
    from repro.workload.spec import SpecWorkloadFactory

    factory = SpecWorkloadFactory()
    pet = benchmark.pedantic(lambda: factory.build_pet(np.random.default_rng(0)),
                             rounds=1, iterations=1)
    assert pet.shape == (12, 8)
