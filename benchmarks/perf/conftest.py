"""Make the shared benchmark helpers importable from this subdirectory."""

import os
import sys

_BENCH_ROOT = os.path.dirname(os.path.dirname(__file__))
if _BENCH_ROOT not in sys.path:
    sys.path.insert(0, _BENCH_ROOT)
