"""Smoke test of the core perf benchmark harness (tiny scale).

Runs the pinned ``repro bench`` cases at a fraction of the committed
``BENCH_core.json`` scale: fast enough for CI, while still proving that the
harness executes end-to-end, that the incremental path reproduces the naive
metrics exactly, and that the payload schema is stable.  The payload is
persisted under ``benchmarks/results/`` for inspection; the committed
``benchmarks/perf/BENCH_core.json`` is regenerated separately at scale 0.05
(see the module docstring of :mod:`repro.experiments.bench`).
"""

import json
import os

from repro.experiments.bench import (BENCH_CASES, format_bench_table,
                                     run_perf_benchmark, write_bench_json)

from _bench_utils import RESULTS_DIR


def test_perf_benchmark_smoke():
    payload = run_perf_benchmark(scale=0.01, trials=1, base_seed=42)

    assert payload["benchmark"] == "core"
    assert len(payload["scenarios"]) == len(BENCH_CASES)
    for entry in payload["scenarios"]:
        # run_perf_benchmark raises on divergence; the flag records it.
        assert entry["metrics_equal"] is True
        assert entry["naive_s"] > 0 and entry["incremental_s"] > 0
        assert entry["speedup"] > 0
        perf = entry["incremental_perf"]
        assert perf["pmf_folds"] > 0
        assert perf["tail_cache_hits"] + perf["tail_cache_extends"] > 0
        # The incremental path must actually fold less than the naive one.
        assert perf["pmf_folds"] < entry["naive_perf"]["pmf_folds"]
    assert payload["min_speedup"] <= payload["geomean_speedup"] <= payload["max_speedup"]

    table = format_bench_table(payload)
    print()
    print(table)
    assert "geomean speedup" in table

    path = os.path.join(RESULTS_DIR, "BENCH_core.json")
    write_bench_json(payload, path)
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["scale"] == 0.01
