"""Smoke test of the perf benchmark harness (tiny scale).

Runs the pinned ``repro bench`` suites at a fraction of the committed
``BENCH_core.json`` scale: fast enough for CI, while still proving that the
harness executes end-to-end, that the incremental path reproduces the naive
metrics exactly (including across the worker-process boundary of the sweep
suite), and that the payload schemas are stable.  Payloads are written to a
throwaway location; the committed ``benchmarks/perf/BENCH_core.json`` /
``BENCH_sweep.json`` are regenerated separately at the pinned scales (see
the module docstring of :mod:`repro.experiments.bench` -- ``benchmarks/perf``
is the single canonical home of committed benchmark payloads).
"""

import json

from repro.experiments.bench import (BENCH_CASES, compare_to_baseline,
                                     format_baseline_comparison,
                                     format_bench_table, format_sweep_table,
                                     run_perf_benchmark, run_sweep_benchmark,
                                     write_bench_json)


def test_perf_benchmark_smoke(tmp_path):
    payload = run_perf_benchmark(scale=0.01, trials=1, base_seed=42)

    assert payload["benchmark"] == "core"
    assert len(payload["scenarios"]) == len(BENCH_CASES)
    assert any(e["compare"] == "scoring" for e in payload["scenarios"])
    assert any(e["compare"] == "stream" for e in payload["scenarios"])
    assert any(e["compare"] == "numerics" for e in payload["scenarios"])
    assert any(e["compare"] == "topology" for e in payload["scenarios"])
    for entry in payload["scenarios"]:
        if entry["compare"] == "numerics":
            # Fast numerics is tolerance-bounded: a score tie within
            # tolerance may flip an assignment, so equality is recorded
            # rather than enforced (the documented divergence policy).
            assert entry["metrics_equal"] in (True, False)
        else:
            # run_perf_benchmark raises on divergence; the flag records it.
            assert entry["metrics_equal"] is True
        assert entry["naive_s"] > 0 and entry["incremental_s"] > 0
        assert entry["speedup"] > 0
        perf = entry["incremental_perf"]
        assert perf["pmf_folds"] > 0
        assert perf["tail_cache_hits"] + perf["tail_cache_extends"] > 0
        if entry["compare"] in ("incremental", "stream", "topology"):
            # The incremental path must fold less than the naive one.  The
            # stream case compares the same two sides, but driven through
            # the always-on streaming service instead of a batch trial; the
            # topology case drives them with an active tiered topology.
            assert perf["pmf_folds"] < entry["naive_perf"]["pmf_folds"]
        elif entry["compare"] == "numerics":
            # ``pmf_folds`` counts committed-chain folds only -- a function
            # of the simulated trajectory, which the fast profile keeps
            # exact -- so when the metrics agree the counts must too.
            if entry["metrics_equal"]:
                assert perf["pmf_folds"] == entry["naive_perf"]["pmf_folds"]
        else:
            # Scoring cases compare loop vs vector, both incremental: the
            # fold arithmetic is shared, only the plane bookkeeping
            # differs.  The backends count plane work differently, so
            # identical counts would mean the loop ran both sides.
            assert entry["compare"] == "scoring"
            assert perf["pmf_folds"] == entry["naive_perf"]["pmf_folds"]
            assert perf["plane_evals"] != entry["naive_perf"]["plane_evals"]
        # The intern-table / fold-kernel counters ride along in the payload.
        assert perf["interned"] > 0
        assert "intern_hits" in perf and "scratch_reuses" in perf
        assert "fold_memo_hits" in perf and "plane_rounds" in perf
    assert payload["min_speedup"] <= payload["geomean_speedup"] <= payload["max_speedup"]

    table = format_bench_table(payload)
    print()
    print(table)
    assert "geomean speedup" in table

    path = tmp_path / "BENCH_core.json"
    write_bench_json(payload, str(path))
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["scale"] == 0.01

    # Baseline comparison against the payload itself never regresses; a
    # doctored slow baseline is beaten outright.
    comparison = compare_to_baseline(payload, payload, max_regression=0.1,
                                     max_regression_case=0.25)
    assert not comparison["regressed"]
    assert not comparison["regressed_cases"]
    assert len(comparison["cases"]) == len(BENCH_CASES)
    assert "ok" in format_baseline_comparison(comparison)
    slow = dict(payload)
    slow["geomean_speedup"] = payload["geomean_speedup"] * 10.0
    assert compare_to_baseline(payload, slow, max_regression=0.1)["regressed"]

    # Per-case detection: doctor one baseline case to be 10x faster; the
    # geomean gate would miss it, the per-case gate must flag it by name.
    doctored = json.loads(json.dumps(payload))
    doctored["scenarios"][0]["speedup"] *= 10.0
    case_name = doctored["scenarios"][0]["name"]
    per_case = compare_to_baseline(payload, doctored, max_regression=0.9,
                                   max_regression_case=0.25)
    assert not per_case["geomean_regressed"]
    assert per_case["regressed"] and per_case["regressed_cases"] == [case_name]
    assert case_name in format_baseline_comparison(per_case)
    # Without the per-case threshold the doctored case passes unnoticed.
    lax = compare_to_baseline(payload, doctored, max_regression=0.9)
    assert not lax["regressed"] and lax["regressed_cases"] == []
    # Cases present on one side only are reported, never flagged.
    subset = json.loads(json.dumps(payload))
    subset["scenarios"] = subset["scenarios"][1:]
    partial = compare_to_baseline(subset, payload, max_regression=0.9,
                                  max_regression_case=0.25)
    assert partial["missing_cases"] == [case_name]
    assert not partial["regressed"]


def test_sweep_benchmark_smoke(tmp_path):
    payload = run_sweep_benchmark(scale=0.004, trials=2, n_jobs=2,
                                  base_seed=42)

    assert payload["benchmark"] == "sweep"
    assert payload["metrics_equal"] is True
    assert len(payload["cells"]) == 4
    for cell in payload["cells"]:
        assert cell["metrics_equal"] is True
        assert cell["perf"] is not None and cell["perf"]["pmf_folds"] > 0
    assert payload["cold_pool_s"] > 0 and payload["warm_pool_s"] > 0
    assert payload["throughput_trials_per_s"] > 0

    table = format_sweep_table(payload)
    print()
    print(table)
    assert "warm pool" in table

    path = tmp_path / "BENCH_sweep.json"
    write_bench_json(payload, str(path))
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["n_jobs"] == 2


def test_crossover_benchmark_smoke():
    from repro.experiments.bench import (format_crossover_table,
                                         run_crossover_benchmark)
    from repro.mapping.kernel import SMALL_PLANE_TASKS

    payload = run_crossover_benchmark(scale=0.004, trials=1, base_seed=42,
                                      max_tasks=2)
    assert payload["benchmark"] == "crossover"
    assert len(payload["widths"]) == 2
    for row in payload["widths"]:
        assert row["loop_s"] > 0 and row["vector_s"] > 0
        assert row["speedup"] > 0
        assert isinstance(row["vector_wins"], bool)
    # The measured threshold is the largest width the loop still wins --
    # between 0 (vector always wins) and max_tasks (loop always wins).
    assert 0 <= payload["measured_small_plane_tasks"] <= 2
    assert payload["pinned_default"] == SMALL_PLANE_TASKS

    table = format_crossover_table(payload)
    print()
    print(table)
    assert "measured small-plane threshold" in table
    assert "small_plane_tasks" in table
