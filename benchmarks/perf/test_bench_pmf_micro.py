"""Micro-benchmark of the PMF construction paths.

Times the three constructor tiers on representative hot-loop arrays:

* ``PMF(origin, probs)`` -- the public validating constructor,
* ``PMF._trusted`` -- trim-only (transient intermediates), and
* ``PMF._from_trimmed`` -- no validation, no trim scan, no copy (the
  batched fold kernel's publication path),

plus the generator fast path that replaced the old ``list(probs)``
round-trip.  Wall-clock assertions are deliberately loose (CI boxes are
noisy); the printed table is the artefact.  The structural invariant --
every tier produces identical canonical values -- is asserted exactly.
"""

import time

import numpy as np

from repro.core.pmf import PMF


def _bench(fn, n):
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - start) / n


def test_constructor_tiers():
    rng = np.random.default_rng(0)
    probs = rng.random(48) + 1e-3
    probs /= probs.sum()
    probs.setflags(write=False)
    n = 2000

    public_s = _bench(lambda: PMF(10, probs), n)
    trusted_s = _bench(lambda: PMF._trusted(10, probs), n)
    trimmed_s = _bench(lambda: PMF._from_trimmed(10, probs), n)

    print()
    print(f"PMF(origin, probs)     : {public_s * 1e6:8.2f} us")
    print(f"PMF._trusted           : {trusted_s * 1e6:8.2f} us")
    print(f"PMF._from_trimmed      : {trimmed_s * 1e6:8.2f} us")

    # All three tiers canonicalise to the same value.
    a, b, c = PMF(10, probs), PMF._trusted(10, probs), PMF._from_trimmed(10, probs)
    assert a.identical(b) and b.identical(c)
    # The trusted tiers must not be slower than full validation (loose 2x
    # guard against scheduler noise, not a tight perf pin).
    assert trimmed_s < public_s * 2
    assert trusted_s < public_s * 2


def test_iterable_constructor_has_no_list_roundtrip():
    n = 1000
    values = [0.001] * 400

    def from_generator():
        return PMF(0, (v for v in values))

    def from_list():
        return PMF(0, values)

    gen_s = _bench(from_generator, n)
    list_s = _bench(from_list, n)
    print()
    print(f"PMF(generator)         : {gen_s * 1e6:8.2f} us")
    print(f"PMF(list)              : {list_s * 1e6:8.2f} us")
    assert from_generator().identical(from_list())
