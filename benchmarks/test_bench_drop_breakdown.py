"""Benchmark regenerating the §V-F drop-breakdown analysis.

Paper claim: with the proactive dropping mechanism in place, only a small
minority (~7 %) of all machine-queue drops happen reactively; the rest are
proactive drops of tasks that were unlikely to succeed.
"""

import pytest

from _bench_utils import emit
from repro.experiments.figures import reactive_share_analysis


@pytest.mark.benchmark(group="analysis")
def test_reactive_share_of_drops(benchmark, experiment_config):
    figure = benchmark.pedantic(
        lambda: reactive_share_analysis(experiment_config, level="30k"),
        rounds=1, iterations=1)
    emit(figure)
    with_heuristic = figure.series["PAM+Heuristic"][0].value
    react_only = figure.series["PAM+ReactDrop"][0].value
    assert 0.0 <= with_heuristic <= 1.0
    # Proactive dropping takes over the vast majority of drops.
    assert with_heuristic < 0.5
    # Without proactive dropping every machine-queue drop is reactive (when
    # any occurred at all).
    assert react_only in (0.0, pytest.approx(1.0))
