"""Ablation benchmarks for the design choices called out in DESIGN.md.

A1 -- optimal vs heuristic dropping agreement on synthetic machine queues
      (supports the §V-F claim that the heuristic can replace the optimal
      search without a practical robustness loss);
A2 -- PET histogram resolution versus end-to-end robustness and runtime.
"""

import pytest

from repro.experiments.ablations import (ablation_optimal_vs_heuristic,
                                         ablation_pmf_resolution)


@pytest.mark.benchmark(group="ablations")
def test_ablation_optimal_vs_heuristic(benchmark):
    report = benchmark.pedantic(
        lambda: ablation_optimal_vs_heuristic(num_queues=150, queue_length=5,
                                              beta=1.0, eta=2, seed=17),
        rounds=1, iterations=1)
    print()
    print(f"A1 optimal-vs-heuristic agreement: rate={report.agreement_rate:.2%}, "
          f"mean robustness gap={report.mean_robustness_gap:.4f}, "
          f"max gap={report.max_robustness_gap:.4f}, "
          f"mean drops optimal={report.mean_drops_optimal:.2f} "
          f"heuristic={report.mean_drops_heuristic:.2f}")
    # The heuristic should agree with the optimal decision on the majority of
    # queues and lose very little instantaneous robustness on the rest.
    assert report.agreement_rate >= 0.5
    assert report.mean_robustness_gap < 0.5


@pytest.mark.benchmark(group="ablations")
def test_ablation_pmf_resolution(benchmark, experiment_config):
    config = experiment_config.with_overrides(trials=1)
    points = benchmark.pedantic(
        lambda: ablation_pmf_resolution(config, impulse_budgets=(8, 16, 24, 48),
                                        level="30k"),
        rounds=1, iterations=1)
    print()
    for p in points:
        print(f"A2 PMF resolution: max_impulses={p.max_impulses:>3} "
              f"robustness={p.robustness_pct:6.2f}% "
              f"runtime={p.runtime_seconds:6.2f}s")
    budgets = [p.max_impulses for p in points]
    assert budgets == sorted(budgets)
    assert all(0.0 <= p.robustness_pct <= 100.0 for p in points)
