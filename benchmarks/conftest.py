"""Benchmark-suite configuration.

Ensures ``src/`` is importable without installation and provides the shared
benchmark configuration plus a tiny helper for printing figure tables as the
benchmarks regenerate them.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.config import bench_config  # noqa: E402


@pytest.fixture(scope="session")
def experiment_config():
    """Shared laptop-scale experiment configuration for all figure benchmarks.

    Scale/trials can be raised towards paper scale via the environment
    variables ``REPRO_BENCH_SCALE``, ``REPRO_BENCH_TRIALS`` and
    ``REPRO_BENCH_JOBS``.
    """
    return bench_config()


def emit(figure) -> None:
    """Print the regenerated figure table beneath the benchmark output."""
    from repro.experiments.reporting import format_figure_table

    print()
    print(format_figure_table(figure))
