"""Benchmark regenerating Fig. 7b: mapping heuristics in a homogeneous system.

Paper shape: proactive dropping improves (or at least preserves) robustness
for FCFS, EDF, SJF and PAM on identical machines, and brings the different
mapping heuristics close together.
"""

import pytest

from _bench_utils import emit
from repro.experiments.figures import figure7b_homogeneous


@pytest.mark.benchmark(group="figures")
def test_fig7b_homogeneous(benchmark, experiment_config):
    figure = benchmark.pedantic(
        lambda: figure7b_homogeneous(experiment_config, level="30k",
                                     mappers=("FCFS", "EDF", "SJF", "PAM")),
        rounds=1, iterations=1)
    emit(figure)
    assert len(figure.series) == 8
    for mapper in ("FCFS", "EDF", "SJF", "PAM"):
        with_drop = figure.series[f"{mapper}+Heuristic"][0].value
        without = figure.series[f"{mapper}+ReactDrop"][0].value
        assert 0.0 <= with_drop <= 100.0
        assert with_drop >= without - 5.0
