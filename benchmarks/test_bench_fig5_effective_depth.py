"""Benchmark regenerating Fig. 5: effective depth (η) sensitivity.

Paper shape: robustness peaks around η = 2 and does not improve for larger
effective depths; η = 1 is slightly worse than η = 2.
"""

import pytest

from _bench_utils import emit
from repro.experiments.figures import figure5_effective_depth


@pytest.mark.benchmark(group="figures")
def test_fig5_effective_depth(benchmark, experiment_config):
    figure = benchmark.pedantic(
        lambda: figure5_effective_depth(experiment_config,
                                        etas=(1, 2, 3, 4, 5),
                                        levels=("20k", "30k", "40k")),
        rounds=1, iterations=1)
    emit(figure)
    # Sanity: one series per oversubscription level, five points each,
    # all robustness values are valid percentages.
    assert len(figure.series) == 3
    for name, points in figure.series.items():
        assert [p.x for p in points] == [1, 2, 3, 4, 5]
        assert all(0.0 <= p.value <= 100.0 for p in points)
    # Shape: the heavier the oversubscription, the lower the robustness
    # (compare series means).
    means = {name: sum(p.value for p in pts) / len(pts)
             for name, pts in figure.series.items()}
    assert means["20k tasks"] >= means["40k tasks"]
