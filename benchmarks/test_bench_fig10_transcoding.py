"""Benchmark regenerating Fig. 10: video-transcoding validation workload.

Paper shape: the conclusions of Fig. 7a carry over to the transcoding
workload -- proactive dropping helps every mapping heuristic and makes them
perform similarly; the overall robustness is higher than in the SPEC scenario
because the system is only moderately oversubscribed.
"""

import pytest

from _bench_utils import emit
from repro.experiments.figures import figure10_transcoding


@pytest.mark.benchmark(group="figures")
def test_fig10_transcoding(benchmark, experiment_config):
    figure = benchmark.pedantic(
        lambda: figure10_transcoding(experiment_config, level="20k",
                                     mappers=("MSD", "MM", "PAM")),
        rounds=1, iterations=1)
    emit(figure)
    assert len(figure.series) == 6
    for mapper in ("MSD", "MM", "PAM"):
        with_drop = figure.series[f"{mapper}+Heuristic"][0].value
        without = figure.series[f"{mapper}+ReactDrop"][0].value
        assert with_drop >= without - 5.0
        assert 0.0 <= with_drop <= 100.0
