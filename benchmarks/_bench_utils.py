"""Shared helpers for the benchmark suite."""

import os

from repro.experiments.reporting import format_figure_table

#: Directory where regenerated figure tables are persisted for inspection
#: (and for EXPERIMENTS.md).  Overridable via the REPRO_BENCH_RESULTS_DIR
#: environment variable.
RESULTS_DIR = os.environ.get(
    "REPRO_BENCH_RESULTS_DIR",
    os.path.join(os.path.dirname(__file__), "results"))


def emit(figure) -> None:
    """Print the regenerated figure table and persist it under ``results/``.

    pytest captures stdout of passing tests, so the persisted file is the
    canonical artefact of a benchmark run; it contains the exact series the
    corresponding paper figure plots.
    """
    table = format_figure_table(figure)
    print()
    print(table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{figure.figure_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
