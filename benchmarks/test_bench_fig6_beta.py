"""Benchmark regenerating Fig. 6: robustness improvement factor (β) sensitivity.

Paper shape: robustness is maximised at β = 1 and declines (or at best stays
flat) as β grows, because larger β makes the dropping heuristic increasingly
conservative until it is effectively disabled.
"""

import pytest

from _bench_utils import emit
from repro.experiments.figures import figure6_beta


@pytest.mark.benchmark(group="figures")
def test_fig6_beta(benchmark, experiment_config):
    betas = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)
    figure = benchmark.pedantic(
        lambda: figure6_beta(experiment_config, betas=betas,
                             levels=("20k", "30k", "40k")),
        rounds=1, iterations=1)
    emit(figure)
    assert len(figure.series) == 3
    for name, points in figure.series.items():
        assert [p.x for p in points] == list(betas)
        assert all(0.0 <= p.value <= 100.0 for p in points)
        # Shape: beta = 1 should be at least as good as the most conservative
        # setting (allowing small-sample noise of a few points).
        assert points[0].value >= points[-1].value - 5.0
